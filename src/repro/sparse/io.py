"""Sparse-matrix file I/O: Matrix Market and ``.npz`` CSR archives.

SuiteSparse matrices are distributed as Matrix-Market ``.mtx`` files
(often gzip-compressed as ``.mtx.gz``).  The reproduction generates its
matrices synthetically, but the readers/writers here let users point the
Seer pipeline at real matrix files when they have them, exactly as the
paper's tooling does — ``repro serve`` ingests whole directories of them.

Only the ``matrix coordinate`` container is supported (real / integer /
pattern fields, general / symmetric / skew-symmetric symmetry), which covers
the SuiteSparse collection.  Malformed files — bad headers, truncated entry
lists, out-of-range 1-based coordinates, duplicate entries — all raise
:class:`MatrixMarketError` with a message naming the offending file, never
a bare NumPy error.

The ``.npz`` helpers (:func:`save_npz` / :func:`load_npz`) round-trip a
:class:`~repro.sparse.csr.CSRMatrix` through one compressed NumPy archive;
the sweep engine's generated-matrix tier and the serving layer's ingest
cache both store this layout.
"""

from __future__ import annotations

import gzip
import io
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.sparse.coo import COOMatrix, SparseFormatError
from repro.sparse.csr import CSRMatrix

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


class MatrixMarketError(SparseFormatError):
    """Raised when a Matrix-Market file cannot be parsed."""


def _parse_header(line: str) -> tuple:
    parts = line.strip().lower().split()
    if len(parts) != 5 or parts[0] != "%%matrixmarket" or parts[1] != "matrix":
        raise MatrixMarketError(f"not a MatrixMarket matrix header: {line!r}")
    layout, field, symmetry = parts[2], parts[3], parts[4]
    if layout != "coordinate":
        raise MatrixMarketError(f"unsupported layout {layout!r} (only coordinate)")
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")
    return field, symmetry


def _open_text(path: Path):
    """Open a ``.mtx`` file for reading, decompressing ``.mtx.gz`` transparently."""
    if path.name.lower().endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def _check_coordinates(
    values: np.ndarray, upper: int, what: str, path: Path
) -> None:
    """Validate parsed 0-based coordinates against ``[0, upper)``."""
    if values.shape[0] == 0:
        return
    smallest, largest = int(values.min()), int(values.max())
    if smallest < 0 or largest >= upper:
        offender = smallest + 1 if smallest < 0 else largest + 1
        raise MatrixMarketError(
            f"{path.name}: {what} index {offender} out of range 1..{upper}"
        )


def _check_duplicates(
    rows: np.ndarray, cols: np.ndarray, path: Path, hint: str = ""
) -> None:
    """Reject repeated ``(row, col)`` coordinates with a clear message."""
    if rows.shape[0] < 2:
        return
    order = np.lexsort((cols, rows))
    sorted_rows, sorted_cols = rows[order], cols[order]
    repeated = (sorted_rows[1:] == sorted_rows[:-1]) & (
        sorted_cols[1:] == sorted_cols[:-1]
    )
    if repeated.any():
        first = int(np.argmax(repeated))
        raise MatrixMarketError(
            f"{path.name}: duplicate entry for coordinate "
            f"({int(sorted_rows[first]) + 1}, {int(sorted_cols[first]) + 1})"
            + hint
        )


def read_matrix_market(path, as_csr: bool = True):
    """Read a Matrix-Market coordinate file (``.mtx`` or ``.mtx.gz``).

    Parameters
    ----------
    path:
        File to read; a ``.gz`` suffix is decompressed transparently.
    as_csr:
        Return a :class:`CSRMatrix` when true (the default), otherwise the
        raw :class:`COOMatrix`.
    """
    path = Path(path)
    try:
        with _open_text(path) as handle:
            header = handle.readline()
            field, symmetry = _parse_header(header)
            size_line = None
            for line in handle:
                stripped = line.strip()
                if not stripped or stripped.startswith("%"):
                    continue
                size_line = stripped
                break
            if size_line is None:
                raise MatrixMarketError(f"{path.name}: missing size line")
            try:
                num_rows, num_cols, nnz = (int(tok) for tok in size_line.split())
            except ValueError as exc:
                raise MatrixMarketError(
                    f"{path.name}: bad size line: {size_line!r}"
                ) from exc
            if num_rows < 0 or num_cols < 0 or nnz < 0:
                raise MatrixMarketError(
                    f"{path.name}: negative dimension in size line {size_line!r}"
                )

            rows = np.empty(nnz, dtype=np.int64)
            cols = np.empty(nnz, dtype=np.int64)
            values = np.empty(nnz, dtype=np.float64)
            count = 0
            for line in handle:
                stripped = line.strip()
                if not stripped or stripped.startswith("%"):
                    continue
                tokens = stripped.split()
                if count >= nnz:
                    raise MatrixMarketError(
                        f"{path.name}: more entries than declared in size line"
                    )
                try:
                    rows[count] = int(tokens[0]) - 1
                    cols[count] = int(tokens[1]) - 1
                    if field == "pattern":
                        values[count] = 1.0
                    else:
                        values[count] = float(tokens[2])
                except (ValueError, IndexError) as exc:
                    raise MatrixMarketError(
                        f"{path.name}: bad entry line: {stripped!r}"
                    ) from exc
                count += 1
            if count != nnz:
                raise MatrixMarketError(
                    f"expected {nnz} entries, found {count} in {path.name}"
                )
    except (OSError, UnicodeDecodeError, EOFError, zlib.error) as exc:
        # gzip surfaces header corruption/truncation as OSError/EOFError and
        # corrupt deflate bodies as zlib.error; binary junk in a text stream
        # surfaces as UnicodeDecodeError.
        raise MatrixMarketError(f"{path.name}: unreadable file ({exc})") from exc

    _check_coordinates(rows, num_rows, "row", path)
    _check_coordinates(cols, num_cols, "column", path)
    _check_duplicates(rows, cols, path)

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diagonal = rows != cols
        mirror_sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirrored_rows = np.concatenate([rows, cols[off_diagonal]])
        mirrored_cols = np.concatenate([cols, rows[off_diagonal]])
        values = np.concatenate([values, mirror_sign * values[off_diagonal]])
        rows, cols = mirrored_rows, mirrored_cols
        # A symmetric file must store only one triangle: a file carrying
        # both (i, j) and (j, i) passes the raw check but collides here —
        # without this, mirroring would silently double those values.
        _check_duplicates(
            rows, cols, path, hint=" (both triangles of a symmetric matrix stored?)"
        )

    coo = COOMatrix(
        num_rows=num_rows, num_cols=num_cols, rows=rows, cols=cols, values=values
    )
    return CSRMatrix.from_coo(coo) if as_csr else coo


def write_matrix_market(matrix, path) -> None:
    """Write a CSR or COO matrix as a general real coordinate ``.mtx`` file."""
    if isinstance(matrix, CSRMatrix):
        coo = matrix.to_coo()
    elif isinstance(matrix, COOMatrix):
        coo = matrix
    else:
        raise TypeError(f"cannot write {type(matrix).__name__} as MatrixMarket")
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write("% generated by the Seer reproduction\n")
        handle.write(f"{coo.num_rows} {coo.num_cols} {coo.nnz}\n")
        for row, col, value in zip(coo.rows, coo.cols, coo.values):
            handle.write(f"{int(row) + 1} {int(col) + 1} {value:.17g}\n")


# ----------------------------------------------------------------------
# CSR <-> .npz archives
# ----------------------------------------------------------------------
def csr_to_npz_bytes(matrix: CSRMatrix) -> bytes:
    """Serialized ``.npz`` form of one CSR matrix."""
    buffer = io.BytesIO()
    np.savez(
        buffer,
        num_rows=np.int64(matrix.num_rows),
        num_cols=np.int64(matrix.num_cols),
        row_offsets=matrix.row_offsets,
        col_indices=matrix.col_indices,
        values=matrix.values,
    )
    return buffer.getvalue()


def csr_from_npz_bytes(data: bytes) -> CSRMatrix:
    """Inverse of :func:`csr_to_npz_bytes` (raises on malformed archives)."""
    with np.load(io.BytesIO(data)) as arrays:
        return CSRMatrix(
            num_rows=int(arrays["num_rows"]),
            num_cols=int(arrays["num_cols"]),
            row_offsets=arrays["row_offsets"],
            col_indices=arrays["col_indices"],
            values=arrays["values"],
        )


def save_npz(matrix: CSRMatrix, path) -> None:
    """Persist a CSR matrix as one ``.npz`` archive."""
    Path(path).write_bytes(csr_to_npz_bytes(matrix))


def load_npz(path) -> CSRMatrix:
    """Read a CSR matrix written by :func:`save_npz`.

    Raises :class:`~repro.sparse.coo.SparseFormatError` when the archive is
    missing, truncated or does not hold a valid CSR layout, so ingest-layer
    callers get one exception family for every unreadable matrix file.
    """
    path = Path(path)
    try:
        return csr_from_npz_bytes(path.read_bytes())
    except SparseFormatError as exc:
        raise SparseFormatError(f"{path.name}: {exc}") from exc
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise SparseFormatError(
            f"{path.name}: not a readable CSR .npz archive ({exc})"
        ) from exc
