"""Structural features of sparse matrices.

The paper distinguishes two classes of features (Section III-A):

* **Known features** ship with the dataset and cost nothing to obtain at
  runtime — the matrix dimensions, the number of nonzeros and, for the
  multi-iteration study, the number of SpMV iterations the caller intends to
  run.
* **Gathered features** are row-order *density* statistics computed by
  dedicated parallel kernels at a non-zero runtime cost: the maximum,
  minimum, mean and variance of per-row density, where the density of a row
  is its nonzero count divided by the number of columns (Section IV-A).

This module computes the numeric values; the *cost* of gathering them on the
simulated GPU lives in :mod:`repro.kernels.feature_kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.sparse.csr import CSRMatrix

#: Order of the known features as fed to the decision trees.
KNOWN_FEATURE_NAMES = ("rows", "cols", "nnz", "iterations")

#: Order of the gathered features as fed to the decision trees.
GATHERED_FEATURE_NAMES = (
    "max_row_density",
    "min_row_density",
    "mean_row_density",
    "var_row_density",
)

#: Known followed by gathered — the input layout of the gathered classifier.
ALL_FEATURE_NAMES = KNOWN_FEATURE_NAMES + GATHERED_FEATURE_NAMES


@dataclass(frozen=True)
class KnownFeatures:
    """Features available at runtime with no collection cost."""

    rows: int
    cols: int
    nnz: int
    iterations: int = 1

    def as_vector(self) -> np.ndarray:
        """Return the features in :data:`KNOWN_FEATURE_NAMES` order."""
        return np.array(
            [self.rows, self.cols, self.nnz, self.iterations], dtype=np.float64
        )

    def as_dict(self) -> dict:
        """Return ``{name: value}`` for CSV emission."""
        return {name: getattr(self, name) for name in KNOWN_FEATURE_NAMES}

    def with_iterations(self, iterations: int) -> "KnownFeatures":
        """Return a copy with a different iteration count."""
        return KnownFeatures(
            rows=self.rows, cols=self.cols, nnz=self.nnz, iterations=iterations
        )


@dataclass(frozen=True)
class GatheredFeatures:
    """Row-density statistics collected by feature-collection kernels."""

    max_row_density: float
    min_row_density: float
    mean_row_density: float
    var_row_density: float
    collection_time_ms: float = field(default=0.0, compare=False)

    def as_vector(self) -> np.ndarray:
        """Return the features in :data:`GATHERED_FEATURE_NAMES` order."""
        return np.array(
            [
                self.max_row_density,
                self.min_row_density,
                self.mean_row_density,
                self.var_row_density,
            ],
            dtype=np.float64,
        )

    def as_dict(self) -> dict:
        """Return ``{name: value}`` for CSV emission (without the cost)."""
        return {name: getattr(self, name) for name in GATHERED_FEATURE_NAMES}

    def with_collection_time(self, collection_time_ms: float) -> "GatheredFeatures":
        """Return a copy carrying the measured collection time."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values["collection_time_ms"] = collection_time_ms
        return GatheredFeatures(**values)


def known_features(matrix: CSRMatrix, iterations: int = 1) -> KnownFeatures:
    """Extract the trivially known features of ``matrix``."""
    return KnownFeatures(
        rows=matrix.num_rows,
        cols=matrix.num_cols,
        nnz=matrix.nnz,
        iterations=iterations,
    )


def gathered_features(matrix: CSRMatrix, row_lengths=None) -> GatheredFeatures:
    """Compute the row-density statistics of ``matrix``.

    The density of a row is ``row_length / num_cols`` (Section IV-A), which
    normalizes the statistic across matrices of different widths.  Matrices
    with no columns or no rows yield all-zero statistics.

    ``row_lengths`` optionally supplies the matrix's row lengths as a
    float64 array (e.g. from a shared
    :class:`~repro.kernels.base.LaunchContext`) so callers that already
    computed them avoid a second pass over the row offsets.
    """
    if matrix.num_rows == 0 or matrix.num_cols == 0:
        return GatheredFeatures(0.0, 0.0, 0.0, 0.0)
    if row_lengths is None:
        row_lengths = matrix.row_lengths().astype(np.float64)
    densities = row_lengths / float(matrix.num_cols)
    max_density = float(densities.max())
    min_density = float(densities.min())
    if min_density == max_density:
        # All rows are identical: floating-point summation would otherwise
        # put the mean a ULP off the common value and the variance a hair
        # above zero, breaking the exact min <= mean <= max / var == 0
        # invariants downstream consumers rely on.
        return GatheredFeatures(
            max_row_density=max_density,
            min_row_density=min_density,
            mean_row_density=max_density,
            var_row_density=0.0,
        )
    # Summation error can still push the mean past the extremes; clamp so
    # the invariant min <= mean <= max holds exactly.
    mean_density = min(max(float(densities.mean()), min_density), max_density)
    return GatheredFeatures(
        max_row_density=max_density,
        min_row_density=min_density,
        mean_row_density=mean_density,
        var_row_density=float(densities.var()),
    )


def feature_vector(
    known: KnownFeatures, gathered: GatheredFeatures = None
) -> np.ndarray:
    """Concatenate known (and optionally gathered) features into one vector."""
    if gathered is None:
        return known.as_vector()
    return np.concatenate([known.as_vector(), gathered.as_vector()])
