"""Coordinate (COO) sparse-matrix format.

The COO format stores one (row, column, value) triple per nonzero.  It is the
natural interchange format: every other format in this package converts
through it, and the Matrix-Market reader produces it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class SparseFormatError(ValueError):
    """Raised when sparse-matrix data is structurally invalid."""


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate format.

    Attributes
    ----------
    num_rows, num_cols:
        Matrix dimensions.
    rows, cols:
        Integer arrays of length ``nnz`` with the row/column index of each
        stored entry.
    values:
        Float array of length ``nnz`` with the stored values.
    """

    num_rows: int
    num_cols: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        self.validate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.values.shape[0])

    @property
    def shape(self) -> tuple:
        """``(num_rows, num_cols)``."""
        return (self.num_rows, self.num_cols)

    def validate(self) -> None:
        """Check structural invariants, raising :class:`SparseFormatError`."""
        if self.num_rows < 0 or self.num_cols < 0:
            raise SparseFormatError("matrix dimensions must be non-negative")
        if not (self.rows.shape == self.cols.shape == self.values.shape):
            raise SparseFormatError(
                "rows, cols and values must have identical shapes"
            )
        if self.rows.ndim != 1:
            raise SparseFormatError("COO arrays must be one-dimensional")
        if self.nnz:
            if self.rows.min() < 0 or self.rows.max() >= self.num_rows:
                raise SparseFormatError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= self.num_cols:
                raise SparseFormatError("column index out of bounds")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array (zeros are dropped)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise SparseFormatError("dense input must be two-dimensional")
        rows, cols = np.nonzero(dense)
        return cls(
            num_rows=dense.shape[0],
            num_cols=dense.shape[1],
            rows=rows,
            cols=cols,
            values=dense[rows, cols],
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the matrix as a dense array (duplicates are summed)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy with entries sorted by (row, column)."""
        order = np.lexsort((self.cols, self.rows))
        return COOMatrix(
            num_rows=self.num_rows,
            num_cols=self.num_cols,
            rows=self.rows[order],
            cols=self.cols[order],
            values=self.values[order],
        )

    def deduplicated(self) -> "COOMatrix":
        """Return a copy with duplicate (row, col) entries summed."""
        if self.nnz == 0:
            return self
        ordered = self.sorted_by_row()
        keys = ordered.rows * self.num_cols + ordered.cols
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        values = np.zeros(unique_keys.shape[0], dtype=np.float64)
        np.add.at(values, inverse, ordered.values)
        return COOMatrix(
            num_rows=self.num_rows,
            num_cols=self.num_cols,
            rows=unique_keys // self.num_cols,
            cols=unique_keys % self.num_cols,
            values=values,
        )

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row (length ``num_rows``)."""
        return np.bincount(self.rows, minlength=self.num_rows).astype(np.int64)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference sparse matrix-vector product ``y = A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_cols,):
            raise ValueError(
                f"vector has shape {x.shape}, expected ({self.num_cols},)"
            )
        y = np.zeros(self.num_rows, dtype=np.float64)
        np.add.at(y, self.rows, self.values * x[self.cols])
        return y
