"""ELLPACK (ELL) format.

ELL pads every row to the length of the longest row and stores the result as
dense ``num_rows x max_row_length`` column-index and value arrays.  The
regular layout maps perfectly to SIMD hardware when rows have similar
lengths, but wastes memory and compute when a few rows are much longer than
the rest — exactly the trade-off the ELL,TM kernel of the paper exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix, SparseFormatError
from repro.sparse.csr import CSRMatrix

#: Rows-to-average ratio beyond which ELL conversion is refused by default.
DEFAULT_MAX_PADDING_RATIO = 1024.0

#: Sentinel column index used for padding slots.
PADDING_COLUMN = -1


@dataclass
class ELLMatrix:
    """A sparse matrix in ELLPACK format.

    Attributes
    ----------
    num_rows, num_cols:
        Matrix dimensions.
    max_row_length:
        Width of the padded storage (length of the longest row).
    col_indices:
        ``(num_rows, max_row_length)`` array of column indices;
        :data:`PADDING_COLUMN` marks padding slots.
    values:
        ``(num_rows, max_row_length)`` array of values; padding slots are 0.
    """

    num_rows: int
    num_cols: int
    max_row_length: int
    col_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.col_indices = np.asarray(self.col_indices, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        self.validate()

    @property
    def nnz(self) -> int:
        """Number of non-padding entries."""
        return int(np.count_nonzero(self.col_indices != PADDING_COLUMN))

    @property
    def padded_size(self) -> int:
        """Total number of storage slots including padding."""
        return self.num_rows * self.max_row_length

    @property
    def padding_ratio(self) -> float:
        """Padded slots divided by nonzeros (1.0 means no waste)."""
        nnz = self.nnz
        return float(self.padded_size) / nnz if nnz else float("inf")

    @property
    def shape(self) -> tuple:
        """``(num_rows, num_cols)``."""
        return (self.num_rows, self.num_cols)

    def validate(self) -> None:
        """Check structural invariants, raising :class:`SparseFormatError`."""
        expected = (self.num_rows, self.max_row_length)
        if self.col_indices.shape != expected or self.values.shape != expected:
            raise SparseFormatError(
                f"ELL arrays must have shape {expected}, got "
                f"{self.col_indices.shape} and {self.values.shape}"
            )
        stored = self.col_indices[self.col_indices != PADDING_COLUMN]
        if stored.size and (stored.min() < 0 or stored.max() >= self.num_cols):
            raise SparseFormatError("column index out of bounds")

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        max_padding_ratio: float = DEFAULT_MAX_PADDING_RATIO,
    ) -> "ELLMatrix":
        """Convert a CSR matrix to ELL.

        Raises
        ------
        SparseFormatError
            If padding would exceed ``max_padding_ratio`` times the number of
            nonzeros (the conversion would be pathologically wasteful).
        """
        row_lengths = csr.row_lengths()
        width = int(row_lengths.max()) if csr.num_rows else 0
        padded = csr.num_rows * width
        if csr.nnz and padded > max_padding_ratio * csr.nnz:
            raise SparseFormatError(
                "ELL padding ratio "
                f"{padded / csr.nnz:.1f} exceeds limit {max_padding_ratio:.1f}"
            )
        col_indices = np.full((csr.num_rows, width), PADDING_COLUMN, dtype=np.int64)
        values = np.zeros((csr.num_rows, width), dtype=np.float64)
        if csr.nnz:
            row_ids = np.repeat(np.arange(csr.num_rows), row_lengths)
            slot_ids = np.arange(csr.nnz) - np.repeat(
                csr.row_offsets[:-1], row_lengths
            )
            col_indices[row_ids, slot_ids] = csr.col_indices
            values[row_ids, slot_ids] = csr.values
        return cls(
            num_rows=csr.num_rows,
            num_cols=csr.num_cols,
            max_row_length=width,
            col_indices=col_indices,
            values=values,
        )

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR (padding slots are dropped)."""
        mask = self.col_indices != PADDING_COLUMN
        rows, slots = np.nonzero(mask)
        coo = COOMatrix(
            num_rows=self.num_rows,
            num_cols=self.num_cols,
            rows=rows,
            cols=self.col_indices[rows, slots],
            values=self.values[rows, slots],
        )
        return CSRMatrix.from_coo(coo)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array."""
        return self.to_csr().to_dense()

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference sparse matrix-vector product ``y = A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_cols,):
            raise ValueError(
                f"vector has shape {x.shape}, expected ({self.num_cols},)"
            )
        if self.max_row_length == 0:
            return np.zeros(self.num_rows, dtype=np.float64)
        gather = np.where(
            self.col_indices == PADDING_COLUMN,
            0.0,
            x[np.maximum(self.col_indices, 0)],
        )
        return (self.values * gather).sum(axis=1)
