"""Evaluation of the Seer predictors against the Oracle and single kernels.

For every sample of an evaluation set, four selection approaches are timed
end to end (kernel preprocessing + iterations, plus any selection overhead):

* **Oracle** — the fastest kernel, no overhead (unachievable at runtime);
* **Selector** — the deployed Seer flow: classifier-selection model first,
  then either the known path (no overhead) or the gathered path (feature
  collection paid);
* **Gathered** — always collect features, always use the gathered model;
* **Known** — never collect features, always use the known model;

plus every individual kernel.  These are exactly the bars of Fig. 5/7 and
the aggregates behind the 2x / 6.5x headline numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bench.oracle import OraclePredictor
from repro.core.dataset import TrainingDataset, TrainingSample
from repro.core.inference import TREE_EVALUATION_MS, SeerPredictor
from repro.core.training import USE_GATHERED, USE_KNOWN, SeerModels
from repro.ml.metrics import accuracy_score, geometric_mean

#: Display names of the predictor approaches, in the order of Fig. 5.
PREDICTOR_ORDER = ("Oracle", "Selector", "Gathered", "Known")


@dataclass(frozen=True)
class ApproachTimes:
    """Per-sample end-to-end times and decisions for every approach."""

    name: str
    iterations: int
    oracle_kernel: str
    oracle_ms: float
    selector_choice: str
    selector_kernel: str
    selector_ms: float
    selector_overhead_ms: float
    gathered_kernel: str
    gathered_ms: float
    gathered_overhead_ms: float
    known_kernel: str
    known_ms: float
    kernel_totals_ms: dict

    def approach_time(self, approach: str) -> float:
        """Time of one of the four predictor approaches or a kernel name."""
        mapping = {
            "Oracle": self.oracle_ms,
            "Selector": self.selector_ms,
            "Gathered": self.gathered_ms,
            "Known": self.known_ms,
        }
        if approach in mapping:
            return mapping[approach]
        return self.kernel_totals_ms[approach]


@dataclass
class EvaluationReport:
    """Aggregated evaluation over a dataset."""

    kernel_names: list
    rows: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def aggregate_ms(self, approach: str) -> float:
        """Sum of end-to-end times of an approach across the dataset.

        Kernels that cannot process a matrix contribute the worst finite
        time observed for that matrix (running *something* is always
        possible), so aggregate comparisons remain finite.
        """
        total = 0.0
        for row in self.rows:
            value = row.approach_time(approach)
            if not math.isfinite(value):
                value = max(
                    v for v in row.kernel_totals_ms.values() if math.isfinite(v)
                )
            total += value
        return total

    def aggregate_table(self) -> dict:
        """Aggregate runtime of every approach and every kernel (Fig. 5d)."""
        table = {}
        for approach in PREDICTOR_ORDER:
            table[approach] = self.aggregate_ms(approach)
        for kernel in self.kernel_names:
            table[kernel] = self.aggregate_ms(kernel)
        return table

    def accuracy(self, approach: str) -> float:
        """Fraction of samples where the approach picked the Oracle's kernel."""
        predicted = []
        actual = []
        for row in self.rows:
            actual.append(row.oracle_kernel)
            if approach == "Selector":
                predicted.append(row.selector_kernel)
            elif approach == "Gathered":
                predicted.append(row.gathered_kernel)
            elif approach == "Known":
                predicted.append(row.known_kernel)
            else:
                raise ValueError(f"accuracy undefined for approach {approach!r}")
        return accuracy_score(actual, predicted)

    def selector_choice_accuracy(self) -> float:
        """How often the selector chose the cheaper of its two paths."""
        correct = 0
        for row in self.rows:
            better = (
                USE_GATHERED if row.gathered_ms < row.known_ms else USE_KNOWN
            )
            close = math.isclose(
                row.gathered_ms, row.known_ms, rel_tol=1e-9, abs_tol=1e-12
            )
            if close or row.selector_choice == better:
                correct += 1
        return correct / len(self.rows) if self.rows else float("nan")

    def speedup_vs_best_single_kernel(self, approach: str = "Selector") -> float:
        """Aggregate speedup of an approach over the best single kernel."""
        best_kernel_total = min(
            self.aggregate_ms(kernel) for kernel in self.kernel_names
        )
        return best_kernel_total / self.aggregate_ms(approach)

    def geomean_speedup_vs_kernels(self, approach: str = "Selector") -> float:
        """Geometric-mean per-sample speedup over every individual kernel."""
        ratios = []
        for row in self.rows:
            approach_ms = row.approach_time(approach)
            for kernel in self.kernel_names:
                kernel_ms = row.kernel_totals_ms[kernel]
                if not math.isfinite(kernel_ms):
                    continue
                ratios.append(kernel_ms / approach_ms)
        return geometric_mean(ratios)

    def slowdown_vs_oracle(self, approach: str = "Selector") -> float:
        """Aggregate time of an approach divided by the Oracle's."""
        return self.aggregate_ms(approach) / self.aggregate_ms("Oracle")

    def summary(self) -> dict:
        """Headline metrics of the report, as one JSON-able dict.

        These are the numbers Section IV quotes (accuracies, speedup over
        the best single kernel, geometric-mean speedup over all kernels,
        slowdown against the Oracle); experiment manifests and the accuracy
        table reuse this instead of re-deriving each metric.
        """
        return {
            "samples": len(self.rows),
            "known_accuracy": self.accuracy("Known"),
            "gathered_accuracy": self.accuracy("Gathered"),
            "selector_kernel_accuracy": self.accuracy("Selector"),
            "selector_choice_accuracy": self.selector_choice_accuracy(),
            "selector_speedup_vs_best_kernel": self.speedup_vs_best_single_kernel(),
            "selector_geomean_speedup_vs_kernels": self.geomean_speedup_vs_kernels(),
            "selector_slowdown_vs_oracle": self.slowdown_vs_oracle(),
        }


def predictor_path_time_ms(
    sample: TrainingSample, kernel: str, overhead_ms: float = 0.0
) -> float:
    """End-to-end time of running ``kernel`` on ``sample`` plus overhead.

    If the predicted kernel cannot process the matrix (benchmarked as
    infinity), the library would fail over to some default kernel; the worst
    finite kernel time stands in for that cost so aggregates stay finite and
    mispredictions of this kind are still penalized.
    """
    kernel_ms = sample.kernel_total_ms[kernel]
    if not math.isfinite(kernel_ms):
        kernel_ms = max(
            t for t in sample.kernel_total_ms.values() if math.isfinite(t)
        )
    return kernel_ms + overhead_ms


def _evaluate_sample(sample: TrainingSample, models: SeerModels,
                     predictor: SeerPredictor, oracle: OraclePredictor) -> ApproachTimes:
    known_vector = sample.known_vector
    gathered_vector = sample.gathered_vector

    oracle_kernel = oracle.select(sample)
    oracle_ms = sample.kernel_total_ms[oracle_kernel]

    known_kernel = models.predict_known(known_vector)
    known_ms = predictor_path_time_ms(sample, known_kernel, TREE_EVALUATION_MS)

    gathered_kernel = models.predict_gathered(known_vector, gathered_vector)
    gathered_overhead = sample.collection_time_ms + TREE_EVALUATION_MS
    gathered_ms = predictor_path_time_ms(sample, gathered_kernel, gathered_overhead)

    selector_choice = models.predict_selector(known_vector)
    if selector_choice == USE_GATHERED:
        selector_kernel = gathered_kernel
        selector_overhead = gathered_overhead + TREE_EVALUATION_MS
    else:
        selector_choice = USE_KNOWN
        selector_kernel = known_kernel
        selector_overhead = 2 * TREE_EVALUATION_MS
    selector_ms = predictor_path_time_ms(sample, selector_kernel, selector_overhead)

    return ApproachTimes(
        name=sample.name,
        iterations=sample.iterations,
        oracle_kernel=oracle_kernel,
        oracle_ms=oracle_ms,
        selector_choice=selector_choice,
        selector_kernel=selector_kernel,
        selector_ms=selector_ms,
        selector_overhead_ms=selector_overhead,
        gathered_kernel=gathered_kernel,
        gathered_ms=gathered_ms,
        gathered_overhead_ms=gathered_overhead,
        known_kernel=known_kernel,
        known_ms=known_ms,
        kernel_totals_ms=dict(sample.kernel_total_ms),
    )


def evaluate_dataset(
    dataset: TrainingDataset, models: SeerModels, predictor: SeerPredictor = None
) -> EvaluationReport:
    """Evaluate the three predictors and every kernel over ``dataset``."""
    predictor = predictor or SeerPredictor(models)
    oracle = OraclePredictor()
    rows = [
        _evaluate_sample(sample, models, predictor, oracle) for sample in dataset
    ]
    return EvaluationReport(kernel_names=list(dataset.kernel_names), rows=rows)
