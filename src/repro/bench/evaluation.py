"""Evaluation of the Seer predictors against the Oracle and single kernels.

For every sample of an evaluation set, four selection approaches are timed
end to end (kernel preprocessing + iterations, plus any selection overhead):

* **Oracle** — the fastest kernel, no overhead (unachievable at runtime);
* **Selector** — the deployed Seer flow: classifier-selection model first,
  then either the known path (no overhead) or the gathered path (feature
  collection paid);
* **Gathered** — always collect features, always use the gathered model;
* **Known** — never collect features, always use the known model;

plus every individual kernel.  These are exactly the bars of Fig. 5/7 and
the aggregates behind the 2x / 6.5x headline numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bench.oracle import OraclePredictor
from repro.core.dataset import TrainingDataset, TrainingSample
from repro.core.inference import TREE_EVALUATION_MS, SeerPredictor
from repro.core.training import USE_GATHERED, USE_KNOWN, SeerModels
from repro.ml.metrics import accuracy_score, geometric_mean

#: Display names of the predictor approaches, in the order of Fig. 5.
PREDICTOR_ORDER = ("Oracle", "Selector", "Gathered", "Known")


@dataclass(frozen=True)
class ApproachTimes:
    """Per-sample end-to-end times and decisions for every approach."""

    name: str
    iterations: int
    oracle_kernel: str
    oracle_ms: float
    selector_choice: str
    selector_kernel: str
    selector_ms: float
    selector_overhead_ms: float
    gathered_kernel: str
    gathered_ms: float
    gathered_overhead_ms: float
    known_kernel: str
    known_ms: float
    kernel_totals_ms: dict

    def approach_time(self, approach: str) -> float:
        """Time of one of the four predictor approaches or a kernel name."""
        mapping = {
            "Oracle": self.oracle_ms,
            "Selector": self.selector_ms,
            "Gathered": self.gathered_ms,
            "Known": self.known_ms,
        }
        if approach in mapping:
            return mapping[approach]
        return self.kernel_totals_ms[approach]


@dataclass
class EvaluationReport:
    """Aggregated evaluation over a dataset."""

    kernel_names: list
    rows: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def aggregate_ms(self, approach: str) -> float:
        """Sum of end-to-end times of an approach across the dataset.

        Kernels that cannot process a matrix contribute the worst finite
        time observed for that matrix (running *something* is always
        possible), so aggregate comparisons remain finite.
        """
        total = 0.0
        for row in self.rows:
            value = row.approach_time(approach)
            if not math.isfinite(value):
                value = max(
                    v for v in row.kernel_totals_ms.values() if math.isfinite(v)
                )
            total += value
        return total

    def aggregate_table(self) -> dict:
        """Aggregate runtime of every approach and every kernel (Fig. 5d)."""
        table = {}
        for approach in PREDICTOR_ORDER:
            table[approach] = self.aggregate_ms(approach)
        for kernel in self.kernel_names:
            table[kernel] = self.aggregate_ms(kernel)
        return table

    def accuracy(self, approach: str) -> float:
        """Fraction of samples where the approach picked the Oracle's kernel."""
        predicted = []
        actual = []
        for row in self.rows:
            actual.append(row.oracle_kernel)
            if approach == "Selector":
                predicted.append(row.selector_kernel)
            elif approach == "Gathered":
                predicted.append(row.gathered_kernel)
            elif approach == "Known":
                predicted.append(row.known_kernel)
            else:
                raise ValueError(f"accuracy undefined for approach {approach!r}")
        return accuracy_score(actual, predicted)

    def selector_choice_accuracy(self) -> float:
        """How often the selector chose the cheaper of its two paths."""
        correct = 0
        for row in self.rows:
            better = (
                USE_GATHERED if row.gathered_ms < row.known_ms else USE_KNOWN
            )
            close = math.isclose(
                row.gathered_ms, row.known_ms, rel_tol=1e-9, abs_tol=1e-12
            )
            if close or row.selector_choice == better:
                correct += 1
        return correct / len(self.rows) if self.rows else float("nan")

    def speedup_vs_best_single_kernel(self, approach: str = "Selector") -> float:
        """Aggregate speedup of an approach over the best single kernel."""
        best_kernel_total = min(
            self.aggregate_ms(kernel) for kernel in self.kernel_names
        )
        return best_kernel_total / self.aggregate_ms(approach)

    def geomean_speedup_vs_kernels(self, approach: str = "Selector") -> float:
        """Geometric-mean per-sample speedup over every individual kernel."""
        ratios = []
        for row in self.rows:
            approach_ms = row.approach_time(approach)
            for kernel in self.kernel_names:
                kernel_ms = row.kernel_totals_ms[kernel]
                if not math.isfinite(kernel_ms):
                    continue
                ratios.append(kernel_ms / approach_ms)
        return geometric_mean(ratios)

    def slowdown_vs_oracle(self, approach: str = "Selector") -> float:
        """Aggregate time of an approach divided by the Oracle's."""
        return self.aggregate_ms(approach) / self.aggregate_ms("Oracle")

    def summary(self) -> dict:
        """Headline metrics of the report, as one JSON-able dict.

        These are the numbers Section IV quotes (accuracies, speedup over
        the best single kernel, geometric-mean speedup over all kernels,
        slowdown against the Oracle); experiment manifests and the accuracy
        table reuse this instead of re-deriving each metric.
        """
        return {
            "samples": len(self.rows),
            "known_accuracy": self.accuracy("Known"),
            "gathered_accuracy": self.accuracy("Gathered"),
            "selector_kernel_accuracy": self.accuracy("Selector"),
            "selector_choice_accuracy": self.selector_choice_accuracy(),
            "selector_speedup_vs_best_kernel": self.speedup_vs_best_single_kernel(),
            "selector_geomean_speedup_vs_kernels": self.geomean_speedup_vs_kernels(),
            "selector_slowdown_vs_oracle": self.slowdown_vs_oracle(),
        }


def predictor_path_time_ms(
    sample: TrainingSample, kernel: str, overhead_ms: float = 0.0
) -> float:
    """End-to-end time of running ``kernel`` on ``sample`` plus overhead.

    If the predicted kernel cannot process the matrix (benchmarked as
    infinity), the library would fail over to some default kernel; the worst
    finite kernel time stands in for that cost so aggregates stay finite and
    mispredictions of this kind are still penalized.
    """
    kernel_ms = sample.kernel_total_ms[kernel]
    if not math.isfinite(kernel_ms):
        kernel_ms = max(
            t for t in sample.kernel_total_ms.values() if math.isfinite(t)
        )
    return kernel_ms + overhead_ms


def _assemble_row(
    sample: TrainingSample,
    oracle: OraclePredictor,
    known_kernel: str,
    gathered_kernel: str,
    selector_choice: str,
) -> ApproachTimes:
    """Turn one sample's three model picks into its evaluation row."""
    oracle_kernel = oracle.select(sample)
    oracle_ms = sample.kernel_total_ms[oracle_kernel]

    known_ms = predictor_path_time_ms(sample, known_kernel, TREE_EVALUATION_MS)

    gathered_overhead = sample.collection_time_ms + TREE_EVALUATION_MS
    gathered_ms = predictor_path_time_ms(sample, gathered_kernel, gathered_overhead)

    if selector_choice == USE_GATHERED:
        selector_kernel = gathered_kernel
        selector_overhead = gathered_overhead + TREE_EVALUATION_MS
    else:
        selector_choice = USE_KNOWN
        selector_kernel = known_kernel
        selector_overhead = 2 * TREE_EVALUATION_MS
    selector_ms = predictor_path_time_ms(sample, selector_kernel, selector_overhead)

    return ApproachTimes(
        name=sample.name,
        iterations=sample.iterations,
        oracle_kernel=oracle_kernel,
        oracle_ms=oracle_ms,
        selector_choice=selector_choice,
        selector_kernel=selector_kernel,
        selector_ms=selector_ms,
        selector_overhead_ms=selector_overhead,
        gathered_kernel=gathered_kernel,
        gathered_ms=gathered_ms,
        gathered_overhead_ms=gathered_overhead,
        known_kernel=known_kernel,
        known_ms=known_ms,
        kernel_totals_ms=dict(sample.kernel_total_ms),
    )


def _evaluate_sample(
    sample: TrainingSample, models: SeerModels, oracle: OraclePredictor
) -> ApproachTimes:
    """Scalar reference: one sample through the recursive tree walks.

    Kept as the auditable per-sample path; :func:`evaluate_dataset` uses
    the vectorized batch path by default, and the differential tests assert
    the two produce identical rows.
    """
    return _assemble_row(
        sample,
        oracle,
        known_kernel=models.predict_known(sample.known_vector),
        gathered_kernel=models.predict_gathered(
            sample.known_vector, sample.gathered_vector
        ),
        selector_choice=models.predict_selector(sample.known_vector),
    )


def evaluate_dataset(
    dataset: TrainingDataset,
    models: SeerModels,
    predictor: SeerPredictor = None,
    vectorized: bool = True,
) -> EvaluationReport:
    """Evaluate the three predictors and every kernel over ``dataset``.

    By default the three decision trees are evaluated over the whole
    dataset in one compiled batch pass (:meth:`SeerModels.predict_batch`)
    instead of three recursive Python walks per sample; pass
    ``vectorized=False`` to force the scalar reference path.  Both paths
    produce bit-identical reports.

    ``predictor`` is accepted for backward compatibility and ignored: the
    evaluation consults ``models`` directly (it always has — the paths are
    replayed from the sweep's measurements, never re-collected).
    """
    del predictor
    oracle = OraclePredictor()
    if not vectorized or len(dataset) == 0:
        rows = [_evaluate_sample(sample, models, oracle) for sample in dataset]
        return EvaluationReport(kernel_names=list(dataset.kernel_names), rows=rows)
    batch = models.predict_batch(dataset.known_matrix(), dataset.gathered_matrix())
    rows = [
        _assemble_row(
            sample,
            oracle,
            known_kernel=batch.known_kernels[index],
            gathered_kernel=batch.gathered_kernels[index],
            selector_choice=batch.selector_choices[index],
        )
        for index, sample in enumerate(dataset)
    ]
    return EvaluationReport(kernel_names=list(dataset.kernel_names), rows=rows)
