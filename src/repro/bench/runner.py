"""End-to-end sweep runner.

``run_sweep`` drives the full Seer pipeline on a synthetic collection —
benchmarking, feature collection, training-set assembly, the 80/20 split,
model training and evaluation — and returns everything the experiment
drivers need.  All experiment modules share one sweep per configuration so
the expensive benchmarking work is done once.

The benchmarking stage can optionally be delegated to a
:class:`repro.bench.engine.SweepEngine`, which fans the per-matrix work out
over worker processes and caches artifacts on disk; the serial in-process
path below remains the reference implementation the engine must match
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bench.evaluation import EvaluationReport, evaluate_dataset
from repro.core.benchmarking import BenchmarkSuite, run_benchmark_suite
from repro.core.dataset import (
    DEFAULT_ITERATION_COUNTS,
    TrainingDataset,
    build_training_dataset,
)
from repro.core.inference import SeerPredictor
from repro.core.training import SeerModels, TrainingConfig, train_seer_models
from repro.domains import get_domain
from repro.gpu.device import MI100
from repro.ml.split import train_test_split

#: Train/test split used throughout the paper (Section IV-C).
TEST_FRACTION = 0.2

#: Default seed of the synthetic collection; shared by the sweep engine's
#: cache keys and the model registry so "the default sweep" hashes the same
#: everywhere.
DEFAULT_SEED = 7

#: Default seed of the stratified 80/20 train-test split.
DEFAULT_SPLIT_SEED = 13


@dataclass
class SweepResult:
    """All artifacts of one end-to-end pipeline run."""

    suite: BenchmarkSuite
    dataset: TrainingDataset
    train_set: TrainingDataset
    test_set: TrainingDataset
    models: SeerModels
    predictor: SeerPredictor
    train_report: EvaluationReport
    test_report: EvaluationReport

    @property
    def kernel_names(self) -> list:
        """Kernel labels of the sweep, in paper order."""
        return list(self.suite.kernel_names)

    @property
    def domain_name(self) -> str:
        """Name of the problem domain the sweep ran on."""
        return self.suite.domain_name


def assemble_sweep(
    suite: BenchmarkSuite,
    iteration_counts=DEFAULT_ITERATION_COUNTS,
    device=MI100,
    split_seed: int = DEFAULT_SPLIT_SEED,
    config: Optional[TrainingConfig] = None,
) -> SweepResult:
    """Turn a benchmark suite into a full :class:`SweepResult`.

    This is the deterministic back half of the pipeline — dataset assembly,
    the stratified 80/20 split, model training and evaluation — shared by the
    serial :func:`run_sweep` path and the parallel/cached
    :class:`~repro.bench.engine.SweepEngine` path.
    """
    dataset = build_training_dataset(suite, iteration_counts)

    labels = dataset.labels()
    train_idx, test_idx = train_test_split(
        len(dataset), TEST_FRACTION, seed=split_seed, stratify=labels
    )
    train_set = dataset.subset(train_idx)
    test_set = dataset.subset(test_idx)

    models = train_seer_models(train_set, config)
    predictor = SeerPredictor(models, device=device, domain=suite.domain)
    train_report = evaluate_dataset(train_set, models)
    test_report = evaluate_dataset(test_set, models)
    return SweepResult(
        suite=suite,
        dataset=dataset,
        train_set=train_set,
        test_set=test_set,
        models=models,
        predictor=predictor,
        train_report=train_report,
        test_report=test_report,
    )


def run_sweep(
    profile: str = "small",
    iteration_counts=DEFAULT_ITERATION_COUNTS,
    device=MI100,
    seed: int = DEFAULT_SEED,
    split_seed: int = DEFAULT_SPLIT_SEED,
    config: Optional[TrainingConfig] = None,
    include_rocsparse: bool = True,
    collection=None,
    engine=None,
    domain=None,
) -> SweepResult:
    """Run the full pipeline and return models plus evaluation reports.

    Parameters
    ----------
    profile:
        Synthetic-collection profile (``tiny``/``small``/``medium``/``full``/
        ``wide``/``banded``); ignored when ``collection`` is given.
    iteration_counts:
        Iteration counts the training corpus covers.
    device:
        Simulated device.
    seed:
        Seed of the synthetic collection.
    split_seed:
        Seed of the 80/20 train-test split.
    config:
        Tree-depth configuration.
    include_rocsparse:
        Whether the vendor/aux kernels join the kernel set (for the SpMV
        case study: the rocSPARSE adaptive kernel).
    collection:
        Pre-built collection (any iterable of records), overriding
        ``profile``/``seed``.
    engine:
        Optional :class:`repro.bench.engine.SweepEngine` that parallelizes
        the benchmarking stage and serves repeated configurations from its
        on-disk cache.  Requires a named ``profile`` (the cache key is built
        from the collection recipe, which a pre-built ``collection`` does not
        carry).
    domain:
        Problem domain to sweep (name or instance); defaults to ``"spmv"``.
        ``run_sweep(profile="tiny", domain="spmm")`` runs the SpMM domain
        end to end through exactly the same pipeline.
    """
    domain = get_domain(domain)
    if engine is not None:
        if collection is not None:
            raise ValueError(
                "engine-backed sweeps need a named profile; a pre-built "
                "collection has no recipe to key the cache by"
            )
        return engine.run_sweep(
            profile=profile,
            iteration_counts=iteration_counts,
            device=device,
            seed=seed,
            split_seed=split_seed,
            config=config,
            include_rocsparse=include_rocsparse,
            domain=domain,
        )
    if collection is None:
        # Workloads are generated lazily so only one lives in memory at a time.
        collection = domain.iter_collection(profile, base_seed=seed)
    kernels = domain.default_kernels(device, include_aux=include_rocsparse)
    suite = run_benchmark_suite(collection, kernels=kernels, device=device, domain=domain)
    return assemble_sweep(
        suite,
        iteration_counts=iteration_counts,
        device=device,
        split_seed=split_seed,
        config=config,
    )
