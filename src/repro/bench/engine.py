"""Parallel, cached sweep engine.

The experiment drivers all need the same expensive artifact — a benchmarked,
trained and evaluated :class:`~repro.bench.runner.SweepResult` — and the
serial reference path in :mod:`repro.bench.runner` recomputes it from
scratch on every invocation.  :class:`SweepEngine` makes that artifact cheap
to come by twice:

* **Parallel benchmarking.**  The per-matrix benchmarking + feature
  collection work is fanned out over worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`).  Workers receive
  :class:`~repro.sparse.collection.MatrixSpec` recipes — not built matrices —
  so only small tuples cross the process boundary and every matrix is
  generated, benchmarked and discarded inside one worker.  Results are
  reassembled in spec order, so the parallel path is bit-identical to the
  serial one.

* **Persistent caching.**  With a ``cache_dir``, each
  :class:`~repro.core.benchmarking.MatrixMeasurement` is stored as JSON keyed
  by a hash of (matrix recipe, kernel set, device, code version), and each
  whole :class:`~repro.bench.runner.SweepResult` is pickled keyed by a hash
  of the full sweep configuration.  A second run of any experiment driver —
  or of a different driver sharing the same configuration — is served from
  disk without re-benchmarking.  The code-version component of every key is a
  digest of the package sources, so editing the simulator or kernels
  invalidates stale artifacts automatically.

* **Matrix artifact caching.**  Generating the largest synthetic matrices
  costs more than benchmarking them, so built matrices are additionally
  persisted as ``.npz`` arrays keyed by their *recipe* hash (spec payload
  plus a digest of the ``repro.sparse`` sources only).  Editing the kernels,
  the simulator or the training code invalidates measurements and sweeps but
  *not* the generated matrices — re-benchmarking after such an edit skips
  the generation cost entirely.

The engine is domain-aware: every cache key embeds the active
:class:`~repro.domains.ProblemDomain`'s name, workers resolve the domain by
name to rebuild workloads, and the per-domain feature schemas drive the
measurement JSON layout.

Cache layout::

    <cache_dir>/
      sweeps/<config-hash>.pkl        # whole SweepResult artifacts
      sweeps/<config-hash>.json       # human-readable config for debugging
      measurements/<matrix-hash>.json # per-workload MatrixMeasurement records
      matrices/<recipe-hash>.npz      # generated CSR matrices
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import zipfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Optional
from functools import lru_cache
from pathlib import Path

from repro.bench.runner import DEFAULT_SEED, DEFAULT_SPLIT_SEED
from repro.core.benchmarking import (
    BenchmarkSuite,
    MatrixMeasurement,
    check_timing_mode,
    measure_matrix,
    timing_mode_from_env,
)
from repro.core.dataset import DEFAULT_ITERATION_COUNTS
from repro.core.training import TrainingConfig
from repro.domains import get_domain, spec_payload
from repro.gpu.device import MI100, DeviceSpec
from repro.gpu.simulator import check_precision
from repro.sparse import io as sparse_io
from repro.sparse.collection import CollectionProfile
from repro.sparse.csr import CSRMatrix

#: Bumped whenever the on-disk layout of cached artifacts changes.
CACHE_FORMAT_VERSION = 2


def _digest_sources(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the package sources, part of every cache key.

    Any edit to the simulator, the kernels, the generators or the training
    code changes this digest and therefore invalidates previously cached
    measurements and sweeps — the cache can never serve artifacts produced
    by different code.
    """
    return _digest_sources(Path(__file__).resolve().parent.parent)


@lru_cache(maxsize=1)
def generator_code_version() -> str:
    """Digest of the ``repro.sparse`` sources only.

    Generated matrices depend solely on the sparse formats and generators,
    so their artifact keys use this narrower digest: editing a kernel or the
    trainer invalidates measurements and sweeps but keeps every generated
    matrix servable from disk.
    """
    return _digest_sources(Path(__file__).resolve().parent.parent / "sparse")


def stable_hash(payload: dict) -> str:
    """Deterministic short hash of a JSON-serializable payload.

    Shared cache-keying primitive of every artifact tier: the engine's
    measurement/sweep/matrix tiers, the model registry and the serving
    layer's ingest cache all key by this hash.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


#: Backward-compatible alias of :func:`stable_hash`.
_stable_hash = stable_hash


def measurement_key(
    spec, kernel_labels, device: DeviceSpec, domain=None, precision: str = "exact"
) -> str:
    """Cache key of one workload measurement.

    Every dataclass field of the spec participates (via
    :func:`repro.domains.spec_payload`), so domain-specific recipe
    parameters can never collide.  The precision mode participates too —
    fast-mode timings are only tolerance-close to exact ones, so the two
    modes must never serve each other's cached artifacts.  The timing mode
    does *not*: scalar and batched exact timings are bit-identical by
    construction (and scalar timing only supports ``precision="exact"``).
    """
    domain = get_domain(domain)
    return _stable_hash(
        {
            "format": CACHE_FORMAT_VERSION,
            "code": code_version(),
            "domain": domain.name,
            "spec": spec_payload(spec),
            "kernels": list(kernel_labels),
            "device": asdict(device),
            "precision": check_precision(precision),
        }
    )


def matrix_key(spec, domain=None) -> str:
    """Artifact key of one generated matrix (recipe hash).

    Deliberately independent of the kernel set, the device and the wider
    package sources: a generated matrix is a pure function of its recipe
    and the ``repro.sparse`` generator code.
    """
    domain = get_domain(domain)
    return _stable_hash(
        {
            "format": CACHE_FORMAT_VERSION,
            "generators": generator_code_version(),
            "recipe": domain.matrix_payload(spec),
        }
    )


def _profile_payload(profile) -> dict:
    """Hashable description of a profile (name or CollectionProfile).

    The full size/variant/family grid is hashed — not just the name — so a
    custom :class:`~repro.sparse.collection.CollectionProfile` never collides
    with a built-in one sharing its name.
    """
    if isinstance(profile, str):
        profile = CollectionProfile.from_name(profile)
    return asdict(profile)


def sweep_config_key(
    profile,
    seed: int,
    split_seed: int,
    iteration_counts,
    device: DeviceSpec,
    kernel_labels,
    config: Optional[TrainingConfig] = None,
    domain=None,
    precision: str = "exact",
) -> str:
    """Cache key of a whole sweep configuration.

    ``profile`` may be a name or a ``CollectionProfile``.  ``config=None``
    hashes identically to an explicit default
    :class:`~repro.core.training.TrainingConfig` — they produce the same
    sweep.  The domain name participates, so two domains sharing profile
    names never collide, and so does the precision mode — a fast-mode sweep
    must never be served from an exact-mode artifact or vice versa.
    """
    domain = get_domain(domain)
    return _stable_hash(
        {
            "format": CACHE_FORMAT_VERSION,
            "code": code_version(),
            "domain": domain.name,
            "profile": _profile_payload(profile),
            "seed": seed,
            "split_seed": split_seed,
            "iteration_counts": list(iteration_counts),
            "device": asdict(device),
            "kernels": list(kernel_labels),
            "training": asdict(config or TrainingConfig()),
            "precision": check_precision(precision),
        }
    )


# ----------------------------------------------------------------------
# MatrixMeasurement <-> JSON
# ----------------------------------------------------------------------
def measurement_to_dict(measurement: MatrixMeasurement, domain=None) -> dict:
    """JSON-serializable form of one measurement (infinities allowed)."""
    domain = get_domain(domain)
    return {
        "name": measurement.name,
        "domain": domain.name,
        "known": domain.known_to_payload(measurement.known),
        "gathered": domain.gathered_to_payload(measurement.gathered),
        "kernel_runtime_ms": dict(measurement.kernel_runtime_ms),
        "kernel_preprocessing_ms": dict(measurement.kernel_preprocessing_ms),
    }


def measurement_from_dict(payload: dict, domain=None) -> MatrixMeasurement:
    """Inverse of :func:`measurement_to_dict`."""
    if domain is None:
        domain = payload.get("domain")
    domain = get_domain(domain)
    return MatrixMeasurement(
        name=payload["name"],
        known=domain.known_from_payload(payload["known"]),
        gathered=domain.gathered_from_payload(payload["gathered"]),
        kernel_runtime_ms=dict(payload["kernel_runtime_ms"]),
        kernel_preprocessing_ms=dict(payload["kernel_preprocessing_ms"]),
    )


# ----------------------------------------------------------------------
# CSRMatrix <-> npz artifacts
# ----------------------------------------------------------------------
def matrix_to_bytes(matrix: CSRMatrix) -> bytes:
    """Serialized ``.npz`` form of one generated matrix.

    The layout is :func:`repro.sparse.io.csr_to_npz_bytes` — the same
    archive format ``save_npz``/``load_npz`` and the serving layer's ingest
    cache use, so every ``.npz`` matrix artifact in the system round-trips
    through one reader.
    """
    return sparse_io.csr_to_npz_bytes(matrix)


def matrix_from_bytes(data: bytes) -> CSRMatrix:
    """Inverse of :func:`matrix_to_bytes`."""
    return sparse_io.csr_from_npz_bytes(data)


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` without ever exposing a partial file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _load_matrix_artifact(path: Path):
    """Read a cached matrix artifact, or ``None`` when absent/corrupt."""
    try:
        data = path.read_bytes()
        return matrix_from_bytes(data)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        # BadZipFile covers .npz files that keep their zip magic but are
        # truncated/corrupt; such artifacts are regenerated, never fatal.
        return None


def _measure_spec_chunk(
    specs,
    kernel_labels,
    device: DeviceSpec,
    domain=None,
    matrix_dir=None,
    timing_mode=None,
    precision: str = "exact",
) -> tuple:
    """Worker entry point: benchmark a chunk of workload recipes.

    Runs in a worker process (must stay a module-level function so it can be
    pickled).  The domain crosses the process boundary as an object:
    registered domains pickle by name and resolve to the worker's singleton,
    while unregistered custom domains pickle by state — so spawn-start-method
    workers handle both.  Kernels and the feature collector are rebuilt per
    chunk; the simulated timings are deterministic, so where a measurement is
    computed does not change its value.  With a ``matrix_dir``, built
    matrices are served from and stored into the matrix artifact tier.

    Returns ``(measurements, matrices_generated, matrix_cache_hits)``.
    """
    domain = get_domain(domain)
    kernels = [domain.make_kernel(label, device) for label in kernel_labels]
    pipeline = domain.make_pipeline(device)
    matrix_dir = Path(matrix_dir) if matrix_dir is not None else None
    measurements = []
    generated = 0
    matrix_hits = 0
    for spec in specs:
        matrix = None
        artifact_path = None
        if matrix_dir is not None:
            artifact_path = matrix_dir / f"{matrix_key(spec, domain)}.npz"
            matrix = _load_matrix_artifact(artifact_path)
        if matrix is None:
            matrix = domain.spec_matrix(spec)
            generated += 1
            if artifact_path is not None:
                atomic_write_bytes(artifact_path, matrix_to_bytes(matrix))
        else:
            matrix_hits += 1
        workload = domain.workload_from_matrix(spec, matrix)
        measurements.append(
            measure_matrix(
                spec.name,
                workload,
                kernels,
                pipeline,
                domain=domain,
                timing_mode=timing_mode,
                precision=precision,
            )
        )
    return measurements, generated, matrix_hits


def run_chunked(worker, items, jobs: int, chunks_per_job: int = 4, args=()) -> list:
    """Fan ``worker(chunk, *args)`` out over processes, in deterministic order.

    The engine's benchmarking stage and the serving layer's ingestion stage
    share this process-pool shape: items are split into ``jobs *
    chunks_per_job`` contiguous chunks (smoothing load imbalance between
    cheap and expensive items), futures are collected in submission order,
    and the per-chunk results come back as one list — so a parallel run
    reassembles bit-identically to the serial loop.  ``jobs == 0`` means one
    worker per CPU (as everywhere in the API); ``jobs == 1`` (or a single
    item) short-circuits to an in-process call.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 means one worker per CPU)")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [worker(items, *args)]
    chunk_size = max(1, -(-len(items) // (jobs * max(1, chunks_per_job))))
    chunks = [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        futures = [pool.submit(worker, chunk, *args) for chunk in chunks]
        # Submission order == item order.
        return [future.result() for future in futures]


@dataclass
class EngineStats:
    """Counters describing what an engine actually did."""

    matrices_measured: int = 0
    measurement_cache_hits: int = 0
    sweep_cache_hits: int = 0
    sweep_cache_misses: int = 0
    matrices_generated: int = 0
    matrix_cache_hits: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class SweepEngine:
    """Parallel, cached executor for benchmark sweeps.

    Parameters
    ----------
    jobs:
        Worker processes for the benchmarking stage.  ``1`` (the default)
        runs serially in-process; ``0`` means one worker per CPU.
    cache_dir:
        Directory for persistent artifacts.  ``None`` disables disk caching
        (the engine still parallelizes).
    chunks_per_job:
        Work chunks created per worker; larger values smooth out load
        imbalance between cheap and expensive matrices at the cost of more
        inter-process traffic.
    timing_mode:
        ``"batched"`` or ``"scalar"`` timing for the benchmarking stage.
        ``None`` (the default) resolves the deprecated ``SEER_SCALAR_TIMING``
        fallback once, at construction — workers never consult the
        environment.
    precision:
        ``"exact"`` (golden-pinned default) or ``"fast"`` (fused measurement
        path, tolerance-guarded).  Participates in every measurement and
        sweep cache key, so the two modes never share cached artifacts.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        chunks_per_job: int = 4,
        timing_mode=None,
        precision: str = "exact",
    ):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means one worker per CPU)")
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.chunks_per_job = max(1, chunks_per_job)
        if timing_mode is None:
            timing_mode = timing_mode_from_env()
        self.timing_mode = check_timing_mode(timing_mode)
        self.precision = check_precision(precision)
        if self.timing_mode == "scalar" and self.precision != "exact":
            raise ValueError(
                "timing_mode='scalar' is the ground-truth reference and only "
                "supports precision='exact'"
            )
        self.stats = EngineStats()

    def describe(self) -> dict:
        """Configuration plus activity counters, for logs and manifests."""
        return {
            "jobs": self.jobs,
            "cache_dir": str(self.cache_dir) if self.cache_dir is not None else None,
            "chunks_per_job": self.chunks_per_job,
            "timing_mode": self.timing_mode,
            "precision": self.precision,
            "stats": self.stats.as_dict(),
        }

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _measurement_path(self, key: str) -> Path:
        return self.cache_dir / "measurements" / f"{key}.json"

    def _sweep_path(self, key: str) -> Path:
        return self.cache_dir / "sweeps" / f"{key}.pkl"

    def _matrix_dir(self):
        """Directory of the generated-matrix artifact tier (or ``None``)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "matrices"

    def _load_measurement(self, key: str):
        if self.cache_dir is None:
            return None
        path = self._measurement_path(key)
        try:
            payload = json.loads(path.read_text())
            return measurement_from_dict(payload)
        except Exception:
            # A cached artifact that cannot be read back — truncated file,
            # valid JSON with the wrong shape, unknown domain name — is a
            # cache miss, never fatal: the measurement is recomputed and
            # the slot overwritten.
            return None

    def _store_measurement(self, key: str, measurement: MatrixMeasurement, domain=None) -> None:
        if self.cache_dir is None:
            return
        data = json.dumps(measurement_to_dict(measurement, domain), sort_keys=True).encode()
        atomic_write_bytes(self._measurement_path(key), data)

    def _load_sweep(self, key: str):
        if self.cache_dir is None:
            return None
        path = self._sweep_path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Corrupted/truncated pickles raise a zoo of exception types
            # (UnpicklingError, EOFError, AttributeError, ImportError,
            # IndexError, ...); any unreadable sweep artifact is simply a
            # cache miss and the sweep is recomputed.
            return None

    def _store_sweep(self, key: str, result, describe: dict) -> None:
        if self.cache_dir is None:
            return
        atomic_write_bytes(self._sweep_path(key), pickle.dumps(result))
        meta = json.dumps(describe, sort_keys=True, indent=2).encode()
        atomic_write_bytes(self._sweep_path(key).with_suffix(".json"), meta)

    # ------------------------------------------------------------------
    # Benchmarking stage
    # ------------------------------------------------------------------
    def measure_specs(self, specs, kernel_labels, device: DeviceSpec = MI100, domain=None) -> list:
        """Benchmark workload recipes, in order, using cache and workers.

        Returns one :class:`~repro.core.benchmarking.MatrixMeasurement` per
        spec, in the order the specs were given — identical to what the
        serial loop in :func:`repro.core.benchmarking.run_benchmark_suite`
        produces for the same recipes.
        """
        domain = get_domain(domain)
        specs = list(specs)
        kernel_labels = tuple(kernel_labels)
        keys = [
            measurement_key(spec, kernel_labels, device, domain, precision=self.precision)
            for spec in specs
        ]
        results = [None] * len(specs)
        pending = []
        for index, key in enumerate(keys):
            cached = self._load_measurement(key)
            if cached is not None:
                results[index] = cached
                self.stats.measurement_cache_hits += 1
            else:
                pending.append(index)

        if pending:
            pending_specs = [specs[index] for index in pending]
            measured = self._run_pending(pending_specs, kernel_labels, device, domain)
            for index, measurement in zip(pending, measured):
                results[index] = measurement
                self._store_measurement(keys[index], measurement, domain)
            self.stats.matrices_measured += len(pending)
        return results

    def _run_pending(self, specs, kernel_labels, device: DeviceSpec, domain) -> list:
        """Benchmark uncached specs, parallel when the engine has workers."""
        chunk_results = run_chunked(
            _measure_spec_chunk,
            specs,
            jobs=self.jobs,
            chunks_per_job=self.chunks_per_job,
            args=(
                kernel_labels,
                device,
                domain,
                self._matrix_dir(),
                self.timing_mode,
                self.precision,
            ),
        )
        measurements = []
        for chunk_measurements, generated, matrix_hits in chunk_results:
            measurements.extend(chunk_measurements)
            self.stats.matrices_generated += generated
            self.stats.matrix_cache_hits += matrix_hits
        return measurements

    def run_benchmark_suite(
        self,
        profile: str = "small",
        seed: int = DEFAULT_SEED,
        device: DeviceSpec = MI100,
        include_rocsparse: bool = True,
        domain=None,
    ) -> BenchmarkSuite:
        """Benchmarking + feature collection for a named profile."""
        domain = get_domain(domain)
        kernel_labels = domain.kernel_names(include_aux=include_rocsparse)
        specs = domain.collection_specs(profile, base_seed=seed)
        measurements = self.measure_specs(specs, kernel_labels, device, domain)
        return BenchmarkSuite(
            kernel_names=list(kernel_labels),
            measurements=measurements,
            device_name=device.name,
            domain_name=domain.name,
        )

    # ------------------------------------------------------------------
    # Whole-sweep stage
    # ------------------------------------------------------------------
    def run_sweep(
        self,
        profile: str = "small",
        iteration_counts=DEFAULT_ITERATION_COUNTS,
        device: DeviceSpec = MI100,
        seed: int = DEFAULT_SEED,
        split_seed: int = DEFAULT_SPLIT_SEED,
        config: Optional[TrainingConfig] = None,
        include_rocsparse: bool = True,
        domain=None,
    ):
        """Run (or reload) the full pipeline for one configuration.

        Semantics match :func:`repro.bench.runner.run_sweep` exactly; the
        only differences are where the benchmarking happens (worker
        processes) and whether it happens at all (cache hit).
        """
        from repro.bench.runner import assemble_sweep

        domain = get_domain(domain)
        kernel_labels = domain.kernel_names(include_aux=include_rocsparse)
        key = sweep_config_key(
            profile,
            seed,
            split_seed,
            iteration_counts,
            device,
            kernel_labels,
            config,
            domain,
            precision=self.precision,
        )
        cached = self._load_sweep(key)
        if cached is not None:
            self.stats.sweep_cache_hits += 1
            return cached
        self.stats.sweep_cache_misses += 1

        suite = self.run_benchmark_suite(
            profile=profile,
            seed=seed,
            device=device,
            include_rocsparse=include_rocsparse,
            domain=domain,
        )
        result = assemble_sweep(
            suite,
            iteration_counts=iteration_counts,
            device=device,
            split_seed=split_seed,
            config=config,
        )
        self._store_sweep(
            key,
            result,
            describe={
                "domain": domain.name,
                "profile": _profile_payload(profile),
                "seed": seed,
                "split_seed": split_seed,
                "iteration_counts": list(iteration_counts),
                "device": device.name,
                "kernels": list(kernel_labels),
                "training": asdict(config or TrainingConfig()),
                "precision": self.precision,
                "code": code_version(),
                "format": CACHE_FORMAT_VERSION,
            },
        )
        return result


def jobs_from_env(environ=None):
    """Validated ``SEER_JOBS`` value, or ``None`` when unset/empty."""
    environ = os.environ if environ is None else environ
    raw = environ.get("SEER_JOBS")
    if raw is None or raw.strip() == "":
        return None
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"SEER_JOBS must be an integer >= 0 (0 means one worker per "
            f"CPU), got {raw!r}"
        ) from None
    if jobs < 0:
        raise ValueError(f"SEER_JOBS must be >= 0, got {jobs}")
    return jobs


def engine_from_env(environ=None, jobs=None, cache_dir=None, timing_mode=None, precision=None):
    """Build the engine described by ``SEER_JOBS``/``SEER_CACHE_DIR``.

    ``jobs``/``cache_dir`` override the corresponding environment variable
    (each independently), so callers with explicit settings — e.g. CLI
    flags — can merge them with the environment.  ``timing_mode`` and
    ``precision`` come from CLI flags only; when ``timing_mode`` is ``None``
    the engine constructor resolves the deprecated ``SEER_SCALAR_TIMING``
    fallback once.  Returns ``None`` when the result would be the plain
    serial, cacheless, exact-precision configuration — the serial reference
    path (which itself honors the same environment fallback per call)
    covers that case without an engine.
    """
    environ = os.environ if environ is None else environ
    if jobs is None:
        jobs = jobs_from_env(environ)
    if cache_dir is None:
        cache_dir = environ.get("SEER_CACHE_DIR") or None
    if (
        (jobs is None or jobs == 1)
        and cache_dir is None
        and timing_mode is None
        and precision in (None, "exact")
    ):
        return None
    return SweepEngine(
        jobs=1 if jobs is None else jobs,
        cache_dir=cache_dir,
        timing_mode=check_timing_mode(timing_mode) if timing_mode is not None else timing_mode_from_env(environ),
        precision="exact" if precision is None else precision,
    )
