"""The Oracle predictor.

The paper compares every predictor against an Oracle that runs all kernels
and keeps the fastest — unachievable at runtime but the natural upper bound
(Section IV).  Here the Oracle simply reads the benchmark measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.dataset import TrainingSample


@dataclass(frozen=True)
class OraclePredictor:
    """Exhaustive best-kernel selection from measured totals."""

    name: str = "Oracle"

    def select(self, sample: TrainingSample) -> str:
        """The fastest kernel for this sample (ties broken by name)."""
        finite = {
            kernel: total
            for kernel, total in sample.kernel_total_ms.items()
            if math.isfinite(total)
        }
        if not finite:
            raise ValueError(f"no runnable kernel for sample {sample.name!r}")
        return min(finite, key=lambda kernel: (finite[kernel], kernel))

    def time_ms(self, sample: TrainingSample) -> float:
        """End-to-end time of the Oracle's selection (no selection overhead)."""
        return sample.kernel_total_ms[self.select(sample)]
