"""Benchmark and evaluation harness.

This package turns benchmark suites and trained models into the quantities
the paper reports: Oracle times, per-predictor end-to-end times including
selection overheads, accuracies, aggregate runtimes and speedups.
"""

from repro.bench.oracle import OraclePredictor
from repro.bench.evaluation import (
    ApproachTimes,
    EvaluationReport,
    evaluate_dataset,
    predictor_path_time_ms,
)
from repro.bench.runner import SweepResult, run_sweep

__all__ = [
    "OraclePredictor",
    "ApproachTimes",
    "EvaluationReport",
    "evaluate_dataset",
    "predictor_path_time_ms",
    "SweepResult",
    "run_sweep",
]
