"""Benchmark and evaluation harness.

This package turns benchmark suites and trained models into the quantities
the paper reports: Oracle times, per-predictor end-to-end times including
selection overheads, accuracies, aggregate runtimes and speedups.
"""

from repro.bench.oracle import OraclePredictor
from repro.bench.evaluation import (
    ApproachTimes,
    EvaluationReport,
    evaluate_dataset,
    predictor_path_time_ms,
)
from repro.bench.runner import SweepResult, assemble_sweep, run_sweep
from repro.bench.engine import (
    EngineStats,
    SweepEngine,
    code_version,
    engine_from_env,
    sweep_config_key,
)

__all__ = [
    "OraclePredictor",
    "ApproachTimes",
    "EvaluationReport",
    "evaluate_dataset",
    "predictor_path_time_ms",
    "SweepResult",
    "assemble_sweep",
    "run_sweep",
    "EngineStats",
    "SweepEngine",
    "code_version",
    "engine_from_env",
    "sweep_config_key",
]
