"""Closed-loop load generation against the serving daemon.

``repro bench serve`` answers the question the dynamic batcher exists for:
*does admission batching actually beat per-request inference under
concurrent load?*  It starts an in-process :class:`ServingService` and
drives it with N closed-loop client threads (each fires its next request
the moment the previous response lands), reporting throughput, latency
and the server's batch-occupancy counters.  With ``--compare`` the same
workload is replayed against a ``max_batch_size = 1`` service — the
per-request baseline — so the speedup is measured, not assumed.

Two transports:

* ``inproc`` (default) — clients call :meth:`ServingService.serve_request`
  directly, i.e. they enter at the admission batcher exactly like an HTTP
  handler thread would, but without the stdlib HTTP server in the way.
  Tree inference is microseconds per request; ``http.server``'s
  per-connection accept/parse cost is milliseconds, so over HTTP the
  transport dominates and the batching signal drowns.  ``inproc`` is the
  measurement the regression baseline guards.
* ``http`` — clients POST to ``/v1/serve`` over real sockets.  Measures
  end-to-end daemon throughput including the transport; useful as an
  absolute number, useless for comparing batching policies.

The request stream is deterministic: inline-feature requests synthesized
from the model's own feature schema (seeded RNG), so runs are comparable
and no matrix parsing or kernel execution muddies the inference-throughput
signal.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from dataclasses import dataclass

import numpy as np

from repro.core.training import SeerModels
from repro.serving.requests import ServeRequest
from repro.serving.service import ServiceConfig, ServingService

TRANSPORTS = ("inproc", "http")


def synth_requests(models: SeerModels, count: int, seed: int = 7) -> list:
    """Deterministic inline-feature request payloads for one model.

    Feature values are drawn from ranges wide enough to exercise both
    selector routes; every request carries gathered features so routed rows
    never fail.
    """
    rng = np.random.default_rng(seed)
    known_names = list(models.known_feature_names)
    gathered_names = list(models.gathered_feature_names)
    payloads = []
    for index in range(count):
        known = {}
        for name in known_names:
            if name == "iterations":
                known[name] = int(rng.integers(1, 20))
            elif name in ("rows", "cols", "nnz"):
                known[name] = int(rng.integers(64, 100_000))
            else:
                known[name] = float(np.round(rng.uniform(0.0, 64.0), 6))
        gathered = {
            name: float(np.round(rng.uniform(0.0, 1.0), 6))
            for name in gathered_names
        }
        payloads.append(
            {"name": f"load-{index}", "known": known, "gathered": gathered}
        )
    return payloads


@dataclass
class LoadReport:
    """What one closed-loop run measured, client- and server-side."""

    label: str
    requests: int
    clients: int
    errors: int
    elapsed_s: float
    latencies_ms: list
    server_metrics: dict

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_quantile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.quantile(np.asarray(self.latencies_ms), q))

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "requests": self.requests,
            "clients": self.clients,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms_p50": self.latency_quantile_ms(0.5),
            "latency_ms_p95": self.latency_quantile_ms(0.95),
            "batches_total": self.server_metrics.get("batches_total", 0),
            "batch_occupancy_mean": self.server_metrics.get(
                "batch_occupancy_mean", 0.0
            ),
            "full_flushes": self.server_metrics.get("full_flushes", 0),
            "timer_flushes": self.server_metrics.get("timer_flushes", 0),
        }


def _post_json(url: str, payload: dict, timeout: float = 60.0) -> dict:
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_load(
    config: ServiceConfig,
    payloads: list,
    clients: int = 8,
    label: str = "serve",
    transport: str = "inproc",
) -> LoadReport:
    """Drive one in-process service with closed-loop client threads.

    The payload list is partitioned round-robin over ``clients`` threads.
    ``transport="inproc"`` submits each request straight into the admission
    batcher (:meth:`ServingService.serve_request`); ``transport="http"``
    POSTs it to ``/v1/serve`` over a real socket.  Returns the aggregate
    report including the server's own ``/metrics`` snapshot taken right
    before shutdown.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    latencies: list = []
    errors = [0]
    lock = threading.Lock()
    service = ServingService(config)
    try:
        if transport == "http":
            service.start_background()
            url = service.url + "/v1/serve"

            def send(payload: dict) -> None:
                _post_json(url, payload)

        else:
            requests = [ServeRequest.from_payload(p) for p in payloads]
            by_id = {id(p): r for p, r in zip(payloads, requests)}

            def send(payload: dict) -> None:
                service.serve_request(by_id[id(payload)])

        def client(worker: int) -> None:
            mine = payloads[worker::clients]
            local_latencies = []
            local_errors = 0
            for payload in mine:
                started = time.perf_counter()
                try:
                    send(payload)
                except Exception:
                    local_errors += 1
                local_latencies.append((time.perf_counter() - started) * 1000.0)
            with lock:
                latencies.extend(local_latencies)
                errors[0] += local_errors

        threads = [
            threading.Thread(target=client, args=(worker,), daemon=True)
            for worker in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        metrics = service.metrics.snapshot()
    finally:
        service.shutdown()
    return LoadReport(
        label=label,
        requests=len(payloads),
        clients=clients,
        errors=errors[0],
        elapsed_s=elapsed,
        latencies_ms=latencies,
        server_metrics=metrics,
    )


def bench_serve(
    model_path,
    requests: int = 200,
    clients: int = 8,
    max_batch_size: int = 8,
    max_wait_ms: float = 5.0,
    seed: int = 7,
    compare: bool = True,
    transport: str = "inproc",
) -> dict:
    """The ``repro bench serve`` measurement: batched vs per-request.

    Runs the batched service (admission window ``max_batch_size`` /
    ``max_wait_ms``), and — when ``compare`` — an otherwise-identical
    ``max_batch_size = 1`` service over the same deterministic request
    stream.  Returns both reports plus the batched-over-per-request
    throughput speedup.
    """
    from repro.serving.artifacts import load_artifact

    artifact = load_artifact(model_path)
    payloads = synth_requests(artifact.models, requests, seed=seed)

    def config(batch_size: int) -> ServiceConfig:
        return ServiceConfig(
            model=str(artifact.path),
            max_batch_size=batch_size,
            max_wait_ms=max_wait_ms,
            execute=False,
        )

    batched = run_load(
        config(max_batch_size),
        payloads,
        clients=clients,
        label=f"batched(window={max_batch_size})",
        transport=transport,
    )
    result = {"transport": transport, "batched": batched.as_dict()}
    if compare:
        per_request = run_load(
            config(1),
            payloads,
            clients=clients,
            label="per-request",
            transport=transport,
        )
        result["per_request"] = per_request.as_dict()
        baseline = per_request.throughput_rps
        result["speedup"] = (
            batched.throughput_rps / baseline if baseline > 0 else float("inf")
        )
    return result


def render_bench_serve(result: dict) -> str:
    """Console table for one :func:`bench_serve` result."""
    from repro.experiments.common import format_table

    headers = (
        "mode",
        "req",
        "clients",
        "rps",
        "p50 ms",
        "p95 ms",
        "occupancy",
        "full/timer",
    )
    rows = []
    for key in ("batched", "per_request"):
        report = result.get(key)
        if report is None:
            continue
        rows.append(
            (
                report["label"],
                report["requests"],
                report["clients"],
                f"{report['throughput_rps']:.0f}",
                f"{report['latency_ms_p50']:.2f}",
                f"{report['latency_ms_p95']:.2f}",
                f"{report['batch_occupancy_mean']:.2f}",
                f"{report['full_flushes']}/{report['timer_flushes']}",
            )
        )
    lines = [f"transport: {result.get('transport', 'inproc')}"]
    lines.append(format_table(headers, rows))
    if "speedup" in result:
        lines.append(
            f"batched admission throughput speedup vs per-request: "
            f"{result['speedup']:.2f}x"
        )
    return "\n".join(lines)
