"""Runtime inference (Fig. 3 of the paper).

At runtime Seer first consults the classifier-selection model using only the
trivially known features.  If it answers "known", the known-feature
classifier picks the kernel immediately and no extra work is done.  If it
answers "gathered", the feature-collection kernels are run (paying their
cost), and the gathered-feature classifier picks the kernel from the full
feature vector.  Decision-tree evaluation itself is a handful of compares —
negligible, but accounted for, exactly as the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.training import USE_GATHERED, USE_KNOWN, SeerModels
from repro.domains import get_domain
from repro.gpu.device import DeviceSpec, MI100

#: Cost of evaluating one decision tree at runtime (milliseconds).  A tree of
#: depth <= 8 is a few compares and branches; the value is deliberately tiny
#: but non-zero so it shows up in the accounting.
TREE_EVALUATION_MS = 0.0005


@dataclass(frozen=True)
class SelectionDecision:
    """Outcome of one runtime kernel selection."""

    matrix_name: str
    iterations: int
    selector_choice: str
    kernel_name: str
    known: object
    gathered: object
    collection_time_ms: float
    inference_time_ms: float

    @property
    def collected_features(self) -> bool:
        """Whether the gathered path (feature collection) was taken."""
        return self.selector_choice == USE_GATHERED

    @property
    def overhead_ms(self) -> float:
        """Total selection overhead: tree evaluations plus collection cost."""
        return self.inference_time_ms + self.collection_time_ms


@dataclass
class ExecutionResult:
    """A selection decision plus the execution of the selected kernel."""

    decision: SelectionDecision
    run: object

    @property
    def total_ms(self) -> float:
        """Selection overhead plus kernel preprocessing and iterations."""
        return self.decision.overhead_ms + self.run.total_ms


class SeerPredictor:
    """Deployable runtime predictor built from the trained models.

    The predictor is bound to the problem domain it was trained on.  All
    featurization — known-feature extraction and paid feature collection —
    runs through the domain's :class:`~repro.pipeline.FeaturePipeline`, the
    same code path the benchmark sweep used to produce the training data, so
    a deployed predictor can never see differently-computed features than
    the trees were trained on.
    """

    def __init__(
        self,
        models: SeerModels,
        device: DeviceSpec = MI100,
        collector=None,
        domain=None,
        pipeline=None,
    ):
        self.models = models
        self.device = device
        self.domain = get_domain(domain)
        if pipeline is None:
            pipeline = self.domain.make_pipeline(device, collector=collector)
        self.pipeline = pipeline

    @property
    def collector(self):
        """The pipeline's feature collector (built lazily)."""
        return self.pipeline.collector

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self, workload, iterations: int = 1, name: str = "matrix"
    ) -> SelectionDecision:
        """Select a kernel for ``workload`` following the Fig. 3 flow."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        known = self.pipeline.known_features(workload, iterations)
        return self._decide_flow(known, name, lambda: self.pipeline.gather(workload))

    def predict_from_features(
        self,
        known,
        gathered,
        collection_time_ms: float,
        name: str = "matrix",
    ) -> SelectionDecision:
        """Select a kernel from pre-computed features (no matrix access).

        This is the entry point the evaluation harness uses: the benchmark
        sweep already measured the gathered features and their collection
        cost, so re-simulating collection here would double-count it.
        """
        return self._decide_flow(
            known, name, lambda: gathered.with_collection_time(collection_time_ms)
        )

    def predict_batch_from_features(
        self, known_rows, gathered_rows, names=None
    ) -> list:
        """Select kernels for N pre-computed feature rows in one pass.

        ``known_rows`` and ``gathered_rows`` are matching sequences of
        known/gathered feature objects (the gathered rows carrying their
        measured ``collection_time_ms``); ``names`` optionally labels each
        decision.  All three decision trees are evaluated through the
        compiled vectorized path (:meth:`SeerModels.predict_batch`), and
        each returned :class:`SelectionDecision` is identical to what
        :meth:`predict_from_features` produces for the same row — only the
        per-row Python tree walks are gone.
        """
        known_rows = list(known_rows)
        gathered_rows = list(gathered_rows)
        if len(known_rows) != len(gathered_rows):
            raise ValueError(
                f"known and gathered rows disagree on the sample count: "
                f"{len(known_rows)} vs {len(gathered_rows)}"
            )
        if names is None:
            names = ["matrix"] * len(known_rows)
        elif len(names) != len(known_rows):
            raise ValueError("names must match the number of rows")
        if not known_rows:
            return []
        known_matrix = np.stack([known.as_vector() for known in known_rows])
        gathered_matrix = np.stack(
            [gathered.as_vector() for gathered in gathered_rows]
        )
        batch = self.models.predict_batch(known_matrix, gathered_matrix)
        decisions = []
        for index, (known, gathered) in enumerate(zip(known_rows, gathered_rows)):
            if batch.selector_choices[index] == USE_GATHERED:
                selector_choice = USE_GATHERED
                kernel_name = batch.gathered_kernels[index]
                out_gathered = gathered
                collection_ms = gathered.collection_time_ms
            else:
                selector_choice = USE_KNOWN
                kernel_name = batch.known_kernels[index]
                out_gathered = self.domain.empty_gathered()
                collection_ms = 0.0
            decisions.append(
                SelectionDecision(
                    matrix_name=names[index],
                    iterations=known.iterations,
                    selector_choice=selector_choice,
                    kernel_name=kernel_name,
                    known=known,
                    gathered=out_gathered,
                    collection_time_ms=collection_ms,
                    inference_time_ms=2 * TREE_EVALUATION_MS,
                )
            )
        return decisions

    def serve(self, request, cache=None, execute: bool = False):
        """Serve one unified-API request through this predictor.

        ``request`` is a :class:`~repro.serving.requests.ServeRequest` —
        either a matrix reference (featurized through the predictor's
        pipeline, optionally executing the chosen kernel when ``execute``)
        or inline features.  Returns the matching
        :class:`~repro.serving.requests.ServeResponse`; invalid requests
        raise :class:`~repro.serving.requests.IngestError`.  This is the
        stable entry point that replaces calling :meth:`_decide` with a
        positional gather callback.
        """
        from repro.serving.requests import evaluate_requests

        responses, _ = evaluate_requests(
            self.models,
            [request],
            domain=self.domain,
            device=self.device,
            pipeline=self.pipeline,
            cache=cache,
            execute=execute,
            strict=True,
        )
        return responses[0]

    def _decide(self, known, name: str, gather) -> SelectionDecision:
        """Deprecated positional gather-callback entry point.

        Kept as a bit-identical shim for one release: external callers used
        to drive the Fig. 3 flow by handing ``(known, name, gather)``
        directly; the supported surface is now :meth:`serve` with a
        :class:`~repro.serving.requests.ServeRequest` (or the high-level
        :meth:`predict` / :meth:`predict_from_features`).
        """
        import warnings

        warnings.warn(
            "SeerPredictor._decide(known, name, gather) is deprecated; "
            "build a repro.serving.requests.ServeRequest and call "
            "SeerPredictor.serve() (or use predict()/predict_from_features())",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._decide_flow(known, name, gather)

    def _decide_flow(self, known, name: str, gather) -> SelectionDecision:
        """The Fig. 3 decision flow; ``gather`` yields the paid feature row."""
        known_vector = known.as_vector()
        selector_choice = self.models.predict_selector(known_vector)
        inference_ms = TREE_EVALUATION_MS  # the selector evaluation
        if selector_choice == USE_GATHERED:
            gathered = gather()
            collection_ms = gathered.collection_time_ms
            kernel_name = self.models.predict_gathered(
                known_vector, gathered.as_vector()
            )
        else:
            selector_choice = USE_KNOWN
            gathered = self.domain.empty_gathered()
            collection_ms = 0.0
            kernel_name = self.models.predict_known(known_vector)
        inference_ms += TREE_EVALUATION_MS  # the chosen classifier evaluation
        return SelectionDecision(
            matrix_name=name,
            iterations=known.iterations,
            selector_choice=selector_choice,
            kernel_name=kernel_name,
            known=known,
            gathered=gathered,
            collection_time_ms=collection_ms,
            inference_time_ms=inference_ms,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        workload,
        x: np.ndarray,
        iterations: int = 1,
        name: str = "matrix",
    ) -> ExecutionResult:
        """Select a kernel and run it on ``workload`` and ``x``."""
        decision = self.predict(workload, iterations, name)
        kernel = self.domain.make_kernel(decision.kernel_name, self.device)
        run = kernel.run(workload, x, iterations)
        return ExecutionResult(decision=decision, run=run)
