"""The ``seer()`` entry point (Section III-D of the paper).

The paper's training script is invoked as::

    seer(runtime, preprocessing_data, features)

where the three arguments are the aggregated CSV artifacts of the GPU
benchmarking and feature-collection stages.  This module reproduces that
call signature: each argument may be an in-memory table or a path to the
corresponding CSV file, and the result bundles the trained models, the
generated C++ header and the deployable :class:`SeerPredictor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core import csv_schemas
from repro.core.benchmarking import BenchmarkSuite, MatrixMeasurement
from repro.core.codegen import models_to_cpp_header, models_to_python_module, write_cpp_header
from repro.core.dataset import DEFAULT_ITERATION_COUNTS, build_training_dataset
from repro.core.inference import SeerPredictor
from repro.core.training import SeerModels, TrainingConfig, train_seer_models
from repro.domains import get_domain
from repro.gpu.device import DeviceSpec, MI100


@dataclass
class SeerResult:
    """Everything produced by one ``seer()`` training invocation."""

    models: SeerModels
    predictor: SeerPredictor
    cpp_header: str
    python_module: str
    header_path: Optional[Path] = None

    def save_header(self, path) -> Path:
        """Write the generated C++ header to ``path``."""
        self.header_path = write_cpp_header(self.models, path)
        return self.header_path


def _load_table(table_or_path):
    """Accept an aggregate table dict or a CSV path."""
    if isinstance(table_or_path, (str, Path)):
        _, table = csv_schemas.read_aggregate_csv(table_or_path)
        return table
    return table_or_path


def _load_features(features_or_path):
    """Accept a feature-rows dict or a CSV path."""
    if isinstance(features_or_path, (str, Path)):
        _, rows = csv_schemas.read_feature_csv(features_or_path)
        return rows
    return features_or_path


def _check_kernel_columns(name: str, table: str, row: dict, expected: set) -> None:
    """Raise when one matrix's kernel columns disagree with the first matrix's.

    The suite's ``kernel_names`` come from the first runtime row; every other
    row must carry exactly the same kernel set, or downstream lookups
    (``kernel_total_ms``, training labels) would silently KeyError or drop
    kernels depending on which matrix they touch first.
    """
    actual = set(row)
    if actual == expected:
        return
    missing = sorted(expected - actual)
    extra = sorted(actual - expected)
    parts = []
    if missing:
        parts.append(f"missing {missing}")
    if extra:
        parts.append(f"unexpected {extra}")
    raise ValueError(
        f"matrix {name!r}: {table} table kernels disagree with the suite's "
        f"kernel set {sorted(expected)}: {', '.join(parts)}"
    )


def suite_from_tables(
    runtime, preprocessing_data, features, known, domain=None
) -> BenchmarkSuite:
    """Assemble a :class:`BenchmarkSuite` from the four pipeline tables.

    The feature columns are interpreted by ``domain`` (default ``"spmv"``);
    any registered domain's CSV artifacts round-trip through here.  Every
    matrix must report the same kernel set as the first one — a missing or
    extra kernel column raises a labelled :class:`ValueError` naming the
    matrix and the mismatched kernels.
    """
    domain = get_domain(domain)
    runtime = _load_table(runtime)
    preprocessing_data = _load_table(preprocessing_data)
    features = _load_features(features)
    known = _load_features(known)

    names = sorted(runtime)
    if not names:
        raise ValueError("the runtime table is empty")
    kernel_names = sorted(runtime[names[0]])
    expected = set(kernel_names)
    measurements = []
    for name in names:
        if name not in preprocessing_data or name not in features or name not in known:
            raise KeyError(f"matrix {name!r} missing from one of the input tables")
        _check_kernel_columns(name, "runtime", runtime[name], expected)
        _check_kernel_columns(
            name, "preprocessing", preprocessing_data[name], expected
        )
        gathered_values, collection_time = features[name]
        known_values, _ = known[name]
        measurements.append(
            MatrixMeasurement(
                name=name,
                known=domain.known_from_row(known_values),
                gathered=domain.gathered_from_row(
                    gathered_values, collection_time_ms=collection_time
                ),
                kernel_runtime_ms=dict(runtime[name]),
                kernel_preprocessing_ms=dict(preprocessing_data[name]),
            )
        )
    return BenchmarkSuite(
        kernel_names=kernel_names,
        measurements=measurements,
        domain_name=domain.name,
    )


def seer(
    runtime,
    preprocessing_data,
    features,
    known=None,
    iteration_counts=DEFAULT_ITERATION_COUNTS,
    config: Optional[TrainingConfig] = None,
    device: DeviceSpec = MI100,
    header_path=None,
    domain=None,
) -> SeerResult:
    """Train the Seer models from benchmarking and feature-collection data.

    Parameters
    ----------
    runtime, preprocessing_data:
        Aggregate tables (``{matrix: {kernel: ms}}``) or paths to the
        corresponding CSV files.
    features:
        Gathered-feature rows (``{matrix: (feature_dict, collection_ms)}``)
        or a path to the feature CSV.
    known:
        Known-feature rows in the same layout; may be omitted when
        ``runtime`` is already a :class:`BenchmarkSuite`.
    iteration_counts:
        Iteration counts the training corpus is expanded over.
    config:
        Tree-depth configuration.
    device:
        Device the deployed predictor's feature collector is simulated on.
    header_path:
        When given, the generated C++ header is also written to this path.
    domain:
        Problem domain the tables belong to (name or instance).  Defaults
        to ``"spmv"``; ignored in favour of the suite's own domain when
        ``runtime`` is already a :class:`BenchmarkSuite`.
    """
    if isinstance(runtime, BenchmarkSuite):
        suite = runtime
    else:
        if known is None:
            raise ValueError(
                "the known-feature table is required when passing raw tables"
            )
        suite = suite_from_tables(
            runtime, preprocessing_data, features, known, domain=domain
        )

    dataset = build_training_dataset(suite, iteration_counts)
    models = train_seer_models(dataset, config)
    result = SeerResult(
        models=models,
        predictor=SeerPredictor(models, device=device, domain=suite.domain),
        cpp_header=models_to_cpp_header(models),
        python_module=models_to_python_module(models),
    )
    if header_path is not None:
        result.save_header(header_path)
    return result
