"""CSV artifacts of the Seer pipeline (Section III-D of the paper).

The paper's tooling communicates between stages through CSV files:

* **per-kernel benchmarking CSV** — three columns: dataset name, kernel
  runtime, preprocessing time; one file per kernel;
* **aggregated runtime / preprocessing CSVs** — one ``name`` column plus one
  column per kernel, produced by merging the per-kernel files;
* **feature CSV** — dataset name, one column per gathered feature, and a
  final column with the feature-collection time.

These helpers read and write exactly those layouts so the reproduction's
pipeline stages can also be driven from files on disk, as the original
tooling is.  The layouts are domain-agnostic — the feature columns are
whatever the active :class:`~repro.domains.ProblemDomain` declares — and a
``manifest.json`` sidecar records which domain produced a directory of
artifacts so it can be loaded back without guessing.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

#: Column names of the per-kernel GPU-benchmarking CSV.
BENCHMARK_COLUMNS = ("name", "runtime_ms", "preprocessing_ms")

#: Name of the identifier column shared by every aggregate file.
NAME_COLUMN = "name"

#: Name of the trailing column of the feature CSV.
COLLECTION_TIME_COLUMN = "collection_time_ms"

#: Schema version of the ``manifest.json`` sidecar.
MANIFEST_VERSION = 1


def write_manifest(path, domain, kernel_names, device_name: str) -> None:
    """Write the ``manifest.json`` sidecar describing a CSV artifact set."""
    path = Path(path)
    payload = {
        "version": MANIFEST_VERSION,
        "domain": domain.name,
        "device": device_name,
        "kernels": list(kernel_names),
        "known_features": list(domain.known_feature_names),
        "gathered_features": list(domain.gathered_feature_names),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def read_manifest(path):
    """Read a ``manifest.json`` sidecar, or ``None`` when absent/unreadable."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "domain" not in payload:
        return None
    return payload


def write_kernel_benchmark_csv(path, kernel_name: str, rows) -> None:
    """Write one kernel's benchmarking results.

    ``rows`` is an iterable of ``(dataset_name, runtime_ms, preprocessing_ms)``.
    """
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(BENCHMARK_COLUMNS)
        for name, runtime_ms, preprocessing_ms in rows:
            writer.writerow([name, f"{runtime_ms:.9g}", f"{preprocessing_ms:.9g}"])


def read_kernel_benchmark_csv(path) -> list:
    """Read a per-kernel benchmarking CSV back into a list of tuples."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if tuple(header) != BENCHMARK_COLUMNS:
            raise ValueError(f"unexpected benchmark CSV header {header!r}")
        return [(name, float(runtime), float(prep)) for name, runtime, prep in reader]


def write_aggregate_csv(path, kernel_names, table: dict) -> None:
    """Write an aggregate (runtime or preprocessing) CSV.

    ``table`` maps dataset name to a dict of ``{kernel_name: value}``.
    """
    path = Path(path)
    kernel_names = list(kernel_names)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([NAME_COLUMN] + kernel_names)
        for name in sorted(table):
            row = [name] + [f"{table[name][kernel]:.9g}" for kernel in kernel_names]
            writer.writerow(row)


def read_aggregate_csv(path) -> tuple:
    """Read an aggregate CSV, returning ``(kernel_names, table)``."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if not header or header[0] != NAME_COLUMN:
            raise ValueError(f"unexpected aggregate CSV header {header!r}")
        kernel_names = header[1:]
        table = {}
        for row in reader:
            name, values = row[0], row[1:]
            if len(values) != len(kernel_names):
                raise ValueError(f"row for {name!r} has {len(values)} values")
            table[name] = {
                kernel: float(value) for kernel, value in zip(kernel_names, values)
            }
    return kernel_names, table


def write_feature_csv(path, feature_names, rows: dict) -> None:
    """Write the gathered-feature CSV.

    ``rows`` maps dataset name to ``(feature_dict, collection_time_ms)``.
    """
    path = Path(path)
    feature_names = list(feature_names)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([NAME_COLUMN] + feature_names + [COLLECTION_TIME_COLUMN])
        for name in sorted(rows):
            features, collection_time_ms = rows[name]
            writer.writerow(
                [name]
                + [f"{features[feature]:.9g}" for feature in feature_names]
                + [f"{collection_time_ms:.9g}"]
            )


def read_feature_csv(path) -> tuple:
    """Read a feature CSV, returning ``(feature_names, rows)``."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if (
            len(header) < 2
            or header[0] != NAME_COLUMN
            or header[-1] != COLLECTION_TIME_COLUMN
        ):
            raise ValueError(f"unexpected feature CSV header {header!r}")
        feature_names = header[1:-1]
        rows = {}
        for row in reader:
            name = row[0]
            values = [float(value) for value in row[1:-1]]
            rows[name] = (dict(zip(feature_names, values)), float(row[-1]))
    return feature_names, rows
