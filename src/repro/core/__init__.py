"""Seer core: the training abstraction and runtime inference engine."""

from repro.core.benchmarking import (
    BenchmarkSuite,
    MatrixMeasurement,
    measure_matrix,
    run_benchmark_suite,
)
from repro.core.codegen import (
    models_to_cpp_header,
    models_to_python_module,
    tree_to_cpp,
    tree_to_python,
    write_cpp_header,
    write_python_module,
)
from repro.core.dataset import (
    DEFAULT_ITERATION_COUNTS,
    TrainingDataset,
    TrainingSample,
    build_training_dataset,
)
from repro.core.inference import ExecutionResult, SelectionDecision, SeerPredictor
from repro.core.seer import SeerResult, seer, suite_from_tables
from repro.core.training import (
    USE_GATHERED,
    USE_KNOWN,
    SeerModels,
    TrainingConfig,
    train_seer_models,
)

__all__ = [
    "BenchmarkSuite",
    "MatrixMeasurement",
    "measure_matrix",
    "run_benchmark_suite",
    "models_to_cpp_header",
    "models_to_python_module",
    "tree_to_cpp",
    "tree_to_python",
    "write_cpp_header",
    "write_python_module",
    "DEFAULT_ITERATION_COUNTS",
    "TrainingDataset",
    "TrainingSample",
    "build_training_dataset",
    "ExecutionResult",
    "SelectionDecision",
    "SeerPredictor",
    "SeerResult",
    "seer",
    "suite_from_tables",
    "USE_GATHERED",
    "USE_KNOWN",
    "SeerModels",
    "TrainingConfig",
    "train_seer_models",
]
