"""Training-data generation: GPU benchmarking and feature collection stages.

This is the left half of the paper's Fig. 2: every kernel of interest is run
over the representative dataset to record per-iteration runtime and
preprocessing time, and the feature-collection kernels are run to record the
gathered features together with their collection cost.  The results can be
kept in memory or round-tripped through the CSV layouts of Section III-D.

The stage is domain-agnostic: the active :class:`~repro.domains.ProblemDomain`
supplies the kernels, the feature schemas and the collector, and the default
domain is the paper's ``"spmv"`` case study.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import csv_schemas
from repro.domains import DEFAULT_DOMAIN, get_domain
from repro.gpu.device import MI100
from repro.kernels.base import UnsupportedKernelError

#: Value recorded when a kernel cannot process a matrix at all.
UNSUPPORTED_TIME_MS = math.inf


@dataclass
class MatrixMeasurement:
    """Everything measured for one workload of the representative dataset.

    ``known``/``gathered`` are the active domain's feature objects (the
    :class:`~repro.sparse.features.KnownFeatures` /
    :class:`~repro.sparse.features.GatheredFeatures` dataclasses for SpMV,
    generic feature rows for other domains); both expose ``as_vector``,
    ``as_dict`` and the iteration/collection-time accessors.
    """

    name: str
    known: object
    gathered: object
    kernel_runtime_ms: dict
    kernel_preprocessing_ms: dict

    @property
    def collection_time_ms(self) -> float:
        """Cost of gathering the dynamic features for this matrix."""
        return self.gathered.collection_time_ms

    def kernel_total_ms(self, kernel: str, iterations: int = 1) -> float:
        """End-to-end time of one kernel: preprocessing + iterations x runtime."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        runtime = self.kernel_runtime_ms[kernel]
        preprocessing = self.kernel_preprocessing_ms[kernel]
        return preprocessing + iterations * runtime

    def fastest_kernel(self, iterations: int = 1) -> str:
        """Name of the kernel with the lowest end-to-end time."""
        return min(
            self.kernel_runtime_ms,
            key=lambda kernel: (self.kernel_total_ms(kernel, iterations), kernel),
        )

    def oracle_time_ms(self, iterations: int = 1) -> float:
        """End-to-end time of the fastest kernel (the Oracle of the paper)."""
        return self.kernel_total_ms(self.fastest_kernel(iterations), iterations)


@dataclass
class BenchmarkSuite:
    """All measurements of a benchmarking sweep, in dataset order."""

    kernel_names: list
    measurements: list = field(default_factory=list)
    device_name: str = MI100.name
    domain_name: str = DEFAULT_DOMAIN

    @property
    def domain(self):
        """The :class:`~repro.domains.ProblemDomain` this suite belongs to."""
        return get_domain(self.domain_name)

    def __len__(self) -> int:
        return len(self.measurements)

    def __iter__(self):
        return iter(self.measurements)

    def names(self) -> list:
        """Dataset names in sweep order."""
        return [measurement.name for measurement in self.measurements]

    def get(self, name: str) -> MatrixMeasurement:
        """Look up the measurement of one matrix by name."""
        for measurement in self.measurements:
            if measurement.name == name:
                return measurement
        raise KeyError(name)

    # ------------------------------------------------------------------
    # CSV round trip (Section III-D layouts)
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Write the suite as the four CSV files of the Seer pipeline."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        runtime_table = {
            m.name: dict(m.kernel_runtime_ms) for m in self.measurements
        }
        preprocessing_table = {
            m.name: dict(m.kernel_preprocessing_ms) for m in self.measurements
        }
        csv_schemas.write_aggregate_csv(
            directory / "runtime.csv", self.kernel_names, runtime_table
        )
        csv_schemas.write_aggregate_csv(
            directory / "preprocessing.csv", self.kernel_names, preprocessing_table
        )
        domain = self.domain
        csv_schemas.write_feature_csv(
            directory / "features.csv",
            domain.gathered_feature_names,
            {
                m.name: (m.gathered.as_dict(), m.collection_time_ms)
                for m in self.measurements
            },
        )
        csv_schemas.write_feature_csv(
            directory / "known.csv",
            domain.known_feature_names,
            {m.name: (m.known.as_dict(), 0.0) for m in self.measurements},
        )
        csv_schemas.write_manifest(
            directory / "manifest.json",
            domain=domain,
            kernel_names=self.kernel_names,
            device_name=self.device_name,
        )
        for kernel in self.kernel_names:
            csv_schemas.write_kernel_benchmark_csv(
                directory / f"kernel_{kernel.replace(',', '_')}.csv",
                kernel,
                [
                    (m.name, m.kernel_runtime_ms[kernel], m.kernel_preprocessing_ms[kernel])
                    for m in self.measurements
                ],
            )

    @classmethod
    def load(cls, directory, domain=None) -> "BenchmarkSuite":
        """Read a suite previously written by :meth:`save`.

        The domain is resolved from the directory's ``manifest.json`` when
        present; otherwise from ``domain`` (defaulting to ``"spmv"``, the
        layout every pre-domain artifact used).
        """
        directory = Path(directory)
        manifest = csv_schemas.read_manifest(directory / "manifest.json")
        if manifest is not None:
            domain = get_domain(manifest["domain"])
        else:
            domain = get_domain(domain)
        kernel_names, runtime_table = csv_schemas.read_aggregate_csv(
            directory / "runtime.csv"
        )
        _, preprocessing_table = csv_schemas.read_aggregate_csv(
            directory / "preprocessing.csv"
        )
        _, feature_rows = csv_schemas.read_feature_csv(directory / "features.csv")
        _, known_rows = csv_schemas.read_feature_csv(directory / "known.csv")
        measurements = []
        for name in sorted(runtime_table):
            gathered_values, collection_time = feature_rows[name]
            known_values, _ = known_rows[name]
            measurements.append(
                MatrixMeasurement(
                    name=name,
                    known=domain.known_from_row(known_values),
                    gathered=domain.gathered_from_row(
                        gathered_values, collection_time_ms=collection_time
                    ),
                    kernel_runtime_ms=runtime_table[name],
                    kernel_preprocessing_ms=preprocessing_table[name],
                )
            )
        return cls(
            kernel_names=list(kernel_names),
            measurements=measurements,
            domain_name=domain.name,
        )


def _as_pipeline(features, domain):
    """Coerce a pipeline-or-collector argument to a FeaturePipeline.

    ``measure_matrix`` historically took a bare collector; both are still
    accepted so older call sites keep working, but either way extraction
    runs through the one shared :class:`~repro.pipeline.FeaturePipeline`.
    """
    from repro.pipeline import FeaturePipeline

    if isinstance(features, FeaturePipeline):
        return features
    return FeaturePipeline(domain=domain, collector=features)


#: Measurement-path names accepted by :func:`measure_matrix`.
TIMING_MODES = ("batched", "scalar")


def timing_mode_from_env(environ=None) -> str:
    """Deprecated fallback: map ``SEER_SCALAR_TIMING`` to a timing mode.

    New call sites must pass ``timing_mode`` explicitly (the engine and the
    CLI thread it from their own entry points); this helper exists so the
    retired environment switch keeps working for one more release and is
    the *only* place outside the designated entry-point modules allowed to
    read a ``SEER_*`` variable (see the ENV001 lint rule).
    """
    if environ is None:
        environ = os.environ
    scalar = environ.get("SEER_SCALAR_TIMING")  # repro-lint: disable=ENV001
    return "scalar" if scalar == "1" else "batched"


def check_timing_mode(timing_mode: str) -> str:
    """Validate a timing-mode string and return it."""
    if timing_mode not in TIMING_MODES:
        raise ValueError(
            f"timing_mode must be one of {TIMING_MODES}, got {timing_mode!r}"
        )
    return timing_mode


def measure_matrix(
    name,
    workload,
    kernels,
    pipeline,
    domain=None,
    vectorized=None,
    timing_mode=None,
    precision: str = "exact",
) -> MatrixMeasurement:
    """Benchmark one workload on every kernel and collect its features.

    ``pipeline`` is the domain's :class:`~repro.pipeline.FeaturePipeline`
    (a bare feature collector is also accepted for backward compatibility).

    ``timing_mode`` picks the measurement path: ``"batched"`` shares a
    :class:`~repro.kernels.base.LaunchContext` across every kernel and the
    feature collector and simulates all launches through
    :func:`~repro.gpu.simulator.simulate_launch_batch`; ``"scalar"`` times
    each kernel independently and is the ground-truth reference.  With the
    default ``precision="exact"`` both paths are bit-identical by
    construction (they evaluate the same
    :class:`~repro.gpu.simulator.LaunchSpec` objects);
    ``precision="fast"`` applies the batched path's fused tolerance-guarded
    shortcuts (within
    :data:`~repro.gpu.simulator.FAST_MODE_RELATIVE_TOLERANCE` of the
    reference) and is rejected in scalar mode, which must stay exact.

    ``vectorized`` is the deprecated boolean spelling of ``timing_mode``;
    when neither is given the retired ``SEER_SCALAR_TIMING`` variable is
    consulted via :func:`timing_mode_from_env` (entry points should read
    the environment once and pass ``timing_mode`` explicitly).
    """
    from repro.gpu.simulator import check_precision

    domain = get_domain(domain)
    pipeline = _as_pipeline(pipeline, domain)
    check_precision(precision)
    if timing_mode is None:
        if vectorized is not None:
            timing_mode = "batched" if vectorized else "scalar"
        else:
            timing_mode = timing_mode_from_env()
    elif vectorized is not None:
        raise ValueError("pass timing_mode or the deprecated vectorized, not both")
    check_timing_mode(timing_mode)
    if timing_mode == "scalar" and precision != "exact":
        raise ValueError(
            "the scalar timing path is the ground-truth reference and only "
            "supports precision='exact'"
        )
    runtime = {}
    preprocessing = {}
    if timing_mode == "batched":
        from repro.kernels.base import LaunchContext, batch_timings

        context = LaunchContext.of(workload, precision=precision)
        timings = batch_timings(
            kernels, workload, context=context, precision=precision
        )
        for kernel in kernels:
            timing = timings.get(kernel.name)
            if timing is None:
                runtime[kernel.name] = UNSUPPORTED_TIME_MS
                preprocessing[kernel.name] = 0.0
                continue
            runtime[kernel.name] = timing.iteration_ms
            preprocessing[kernel.name] = timing.preprocessing_ms
        bundle = pipeline.extract(workload, context=context)
    else:
        for kernel in kernels:
            try:
                timing = kernel.timing(workload)
            except UnsupportedKernelError:
                runtime[kernel.name] = UNSUPPORTED_TIME_MS
                preprocessing[kernel.name] = 0.0
                continue
            runtime[kernel.name] = timing.iteration_ms
            preprocessing[kernel.name] = timing.preprocessing_ms
        bundle = pipeline.extract(workload)
    return MatrixMeasurement(
        name=name,
        known=bundle.known,
        gathered=bundle.gathered,
        kernel_runtime_ms=runtime,
        kernel_preprocessing_ms=preprocessing,
    )


def run_benchmark_suite(
    records,
    kernels=None,
    device=MI100,
    domain=None,
    timing_mode=None,
    precision: str = "exact",
) -> BenchmarkSuite:
    """Run the GPU benchmarking and feature-collection stages over a dataset.

    Parameters
    ----------
    records:
        Iterable of objects with ``name`` and ``matrix`` attributes (for
        example :class:`repro.sparse.collection.MatrixRecord`; ``matrix``
        holds the domain's workload object).
    kernels:
        Kernel instances to benchmark; defaults to the domain's registered
        set (the full Table II set for SpMV).
    device:
        Simulated device the kernels run on.
    domain:
        Problem domain name or instance; defaults to ``"spmv"``.
    timing_mode / precision:
        Passed through to :func:`measure_matrix` for every record.

    Note
    ----
    The paper's methodology uses 10 warm-up iterations and averages 10
    timed runs.  The simulated timings are deterministic, so a single
    evaluation is exact and repetition is unnecessary here.
    """
    domain = get_domain(domain)
    if kernels is None:
        kernels = domain.default_kernels(device)
    pipeline = domain.make_pipeline(device)
    measurements = [
        measure_matrix(
            record.name,
            record.matrix,
            kernels,
            pipeline,
            domain=domain,
            timing_mode=timing_mode,
            precision=precision,
        )
        for record in records
    ]
    return BenchmarkSuite(
        kernel_names=[kernel.name for kernel in kernels],
        measurements=measurements,
        device_name=device.name,
        domain_name=domain.name,
    )
