"""Training of the three Seer models (Fig. 2 of the paper).

Three decision trees are trained:

1. the **known-feature classifier**, trained on the trivially known features
   to predict the fastest kernel;
2. the **gathered-feature classifier**, trained on known + gathered features
   to predict the fastest kernel;
3. the **classifier-selection model**, trained on the known features only, to
   predict which of the two classifiers should be consulted at runtime.

The selector's training label is *cost-aware* (Sections III-A and IV-D): a
sample is labelled "gathered" only when the end-to-end time through the
gathered path — feature collection plus the gathered model's pick — beats the
end-to-end time through the known path.  This is what lets the deployed
predictor skip feature collection whenever a misprediction would be cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dataset import TrainingDataset
from repro.ml.decision_tree import DecisionTreeClassifier

#: Selector class meaning "use the known-feature classifier".
USE_KNOWN = "known"

#: Selector class meaning "collect features and use the gathered classifier".
USE_GATHERED = "gathered"

#: Default tree depths; fixed up front, never tuned on the test set
#: (Section III-C).  Moderate depths are deliberately chosen: deep trees give
#: the known model pure leaves and high apparent confidence, which erases the
#: uncertainty signal the cost-aware selector relies on to route risky inputs
#: through feature collection.
DEFAULT_KNOWN_DEPTH = 6
DEFAULT_GATHERED_DEPTH = 8
DEFAULT_SELECTOR_DEPTH = 8


@dataclass(frozen=True)
class BatchSelection:
    """Vectorized selection decisions for a batch of feature rows.

    One entry per input row, in input order.  ``gathered_kernels`` is
    ``None`` when the batch was predicted from known features only (no
    gathered feature matrix was supplied).
    """

    selector_choices: tuple
    known_kernels: tuple
    gathered_kernels: tuple = None

    def __len__(self) -> int:
        return len(self.selector_choices)

    @property
    def kernels(self) -> tuple:
        """The deployed per-row kernel choice (the Fig. 3 selector flow).

        Rows the selector routes through the gathered classifier take that
        classifier's pick; the rest take the known classifier's.  Raises
        when a row needs the gathered pick but the batch carried no
        gathered features — serving such a row would require collecting
        features, which a pure feature-matrix batch cannot do.
        """
        if self.gathered_kernels is None:
            routed = sum(
                1 for choice in self.selector_choices if choice == USE_GATHERED
            )
            if routed:
                raise ValueError(
                    f"{routed} row(s) are routed to the gathered classifier "
                    f"but the batch has no gathered features; supply the "
                    f"gathered feature matrix to serve them"
                )
            return self.known_kernels
        return tuple(
            gathered if choice == USE_GATHERED else known
            for choice, known, gathered in zip(
                self.selector_choices, self.known_kernels, self.gathered_kernels
            )
        )


@dataclass
class SeerModels:
    """The three fitted decision trees plus the metadata needed to use them."""

    known_model: DecisionTreeClassifier
    gathered_model: DecisionTreeClassifier
    selector_model: DecisionTreeClassifier
    kernel_names: list
    known_feature_names: tuple
    gathered_feature_names: tuple
    training_size: int = 0

    def predict_known(self, known_vector) -> str:
        """Kernel predicted from the known features alone."""
        return self.known_model.predict_one(known_vector)

    def predict_gathered(self, known_vector, gathered_vector) -> str:
        """Kernel predicted from known + gathered features."""
        full = np.concatenate(
            [np.asarray(known_vector, dtype=np.float64),
             np.asarray(gathered_vector, dtype=np.float64)]
        )
        return self.gathered_model.predict_one(full)

    def predict_selector(self, known_vector) -> str:
        """Which classifier the selector chooses (``"known"``/``"gathered"``)."""
        return self.selector_model.predict_one(known_vector)

    def predict_batch(self, known_matrix, gathered_matrix=None) -> BatchSelection:
        """Run all three trees over N feature rows in one vectorized pass.

        ``known_matrix`` has one known-feature row per sample;
        ``gathered_matrix`` (optional) the matching gathered-feature rows.
        Each tree is evaluated through its compiled flattened form
        (:mod:`repro.serving.compiled`), so the whole batch costs a few
        NumPy passes instead of 3N recursive walks — element-wise identical
        to :meth:`predict_known` / :meth:`predict_gathered` /
        :meth:`predict_selector` per row.
        """
        known_matrix = np.atleast_2d(np.asarray(known_matrix, dtype=np.float64))
        selector_choices = tuple(self.selector_model.predict_batch(known_matrix))
        known_kernels = tuple(self.known_model.predict_batch(known_matrix))
        gathered_kernels = None
        if gathered_matrix is not None:
            gathered_matrix = np.atleast_2d(
                np.asarray(gathered_matrix, dtype=np.float64)
            )
            if gathered_matrix.shape[0] != known_matrix.shape[0]:
                raise ValueError(
                    f"known and gathered batches disagree on the sample "
                    f"count: {known_matrix.shape[0]} vs {gathered_matrix.shape[0]}"
                )
            full = np.hstack([known_matrix, gathered_matrix])
            gathered_kernels = tuple(self.gathered_model.predict_batch(full))
        return BatchSelection(
            selector_choices=selector_choices,
            known_kernels=known_kernels,
            gathered_kernels=gathered_kernels,
        )


@dataclass
class TrainingConfig:
    """Depth and label-construction configuration of the three trees."""

    known_depth: int = DEFAULT_KNOWN_DEPTH
    gathered_depth: int = DEFAULT_GATHERED_DEPTH
    selector_depth: int = DEFAULT_SELECTOR_DEPTH
    min_samples_leaf: int = 1
    #: Weigh selector samples by the cost of routing them wrongly and add the
    #: feature-collection cost to the gathered path (the paper's key idea).
    cost_aware_selector: bool = True
    #: Number of folds used to produce out-of-sample submodel predictions
    #: when building the selector labels; 0 or 1 uses in-sample predictions.
    selector_cross_fit: int = 5


def _path_time(sample, kernel: str) -> float:
    """End-to-end time of running ``kernel``, falling back when unsupported.

    A predicted kernel may be unable to process the matrix at all (recorded
    as infinity by the benchmarking stage); running it would in practice mean
    failing over to whatever the library ships as its default, so the worst
    finite kernel time stands in for that cost.
    """
    time_ms = sample.total_ms(kernel)
    if math.isfinite(time_ms):
        return time_ms
    return max(t for t in sample.kernel_total_ms.values() if math.isfinite(t))


def _cross_fit_predictions(dataset: TrainingDataset, config: "TrainingConfig") -> tuple:
    """Out-of-fold fastest-kernel predictions of the known and gathered models.

    The selector must judge how the submodels behave on data they were *not*
    fitted on — in-sample predictions overstate the known model's reliability
    and bias the selector towards skipping feature collection.  Each fold's
    samples are predicted by submodels trained on the remaining folds.
    """
    folds = max(int(config.selector_cross_fit), 1)
    num_samples = len(dataset)
    known_X = dataset.known_matrix()
    full_X = dataset.full_matrix()
    labels = dataset.labels()
    known_predictions = [None] * num_samples
    gathered_predictions = [None] * num_samples
    fold_of = np.arange(num_samples) % folds
    for fold in range(folds):
        held_out = np.flatnonzero(fold_of == fold)
        fitted_on = np.flatnonzero(fold_of != fold)
        if fitted_on.size == 0 or held_out.size == 0:
            fitted_on = np.arange(num_samples)
            held_out = np.arange(num_samples)
        fold_labels = [labels[i] for i in fitted_on]
        known_fold = DecisionTreeClassifier(
            max_depth=config.known_depth, min_samples_leaf=config.min_samples_leaf
        ).fit(known_X[fitted_on], fold_labels)
        gathered_fold = DecisionTreeClassifier(
            max_depth=config.gathered_depth, min_samples_leaf=config.min_samples_leaf
        ).fit(full_X[fitted_on], fold_labels)
        for index, known_pick, gathered_pick in zip(
            held_out,
            known_fold.predict(known_X[held_out]),
            gathered_fold.predict(full_X[held_out]),
        ):
            known_predictions[index] = known_pick
            gathered_predictions[index] = gathered_pick
    return known_predictions, gathered_predictions


def _selector_labels(
    dataset: TrainingDataset,
    known_model: DecisionTreeClassifier,
    gathered_model: DecisionTreeClassifier,
    config: "TrainingConfig",
) -> tuple:
    """Selector training labels and cost-based sample weights.

    The label says which path (known or gathered) ends up faster for the
    sample; the weight is the absolute time difference between the two
    paths, so the selector tree concentrates on the samples where routing
    wrongly is expensive — a misprediction between two near-equivalent paths
    barely matters, one that sends a huge skewed matrix to a padded-format
    kernel matters enormously (Section IV-D).
    """
    cost_aware = config.cost_aware_selector
    labels = []
    weights = []
    # The selector must judge both "how likely is the known model to be
    # wrong here" and "how much would that cost" (Section III-A).  Point
    # predictions alone understate the risk, so each path is charged its
    # *expected* cost under the classifier's leaf distribution: a sample
    # sitting in a leaf whose plausible picks include a catastrophic kernel
    # gets a high known-path cost even if the argmax pick happens to be
    # fine.  The cross-fit point predictions add a second, out-of-sample
    # view; the pessimistic (max) combination of the two decides the label.
    expected_known = _expected_path_costs(
        dataset, known_model, dataset.known_matrix()
    )
    expected_gathered = _expected_path_costs(
        dataset, gathered_model, dataset.full_matrix()
    )
    if config.selector_cross_fit and config.selector_cross_fit > 1 and len(dataset) > 4:
        cross_known, cross_gathered = _cross_fit_predictions(dataset, config)
    else:
        cross_known = known_model.predict(dataset.known_matrix())
        cross_gathered = gathered_model.predict(dataset.full_matrix())
    for index, sample in enumerate(dataset.samples):
        known_path_ms = max(
            expected_known[index], _path_time(sample, cross_known[index])
        )
        gathered_path_ms = max(
            expected_gathered[index], _path_time(sample, cross_gathered[index])
        )
        if cost_aware:
            gathered_path_ms += sample.collection_time_ms
        labels.append(
            USE_GATHERED if gathered_path_ms < known_path_ms else USE_KNOWN
        )
        if cost_aware:
            weights.append(abs(known_path_ms - gathered_path_ms) + 1e-6)
        else:
            weights.append(1.0)
    return labels, np.asarray(weights, dtype=np.float64)


#: Leaf probabilities below this threshold are treated as noise when charging
#: a path its expected cost — only kernels the classifier considers genuinely
#: plausible contribute to the risk estimate.  Zero keeps every class the
#: leaf has ever seen, which is the conservative default: a kernel that was
#: best for even one training matrix in the leaf is a plausible (and possibly
#: catastrophic) pick for unseen matrices landing there.
PLAUSIBLE_CLASS_THRESHOLD = 0.0


def _expected_path_costs(
    dataset: TrainingDataset, model: DecisionTreeClassifier, features: np.ndarray
) -> np.ndarray:
    """Expected end-to-end cost of following ``model`` for every sample.

    The cost of a path is the probability-weighted average, over the kernels
    the model's leaf considers plausible (probability above
    :data:`PLAUSIBLE_CLASS_THRESHOLD`), of running each kernel on the sample.
    """
    probabilities = model.predict_proba(features)
    classes = model.classes_
    costs = np.zeros(len(dataset), dtype=np.float64)
    for index, sample in enumerate(dataset.samples):
        cost = 0.0
        mass = 0.0
        for probability, kernel in zip(probabilities[index], classes):
            if probability > PLAUSIBLE_CLASS_THRESHOLD:
                cost += probability * _path_time(sample, kernel)
                mass += probability
        if mass <= 0.0:
            # Degenerate leaf: fall back to the point prediction.
            pick = classes[int(np.argmax(probabilities[index]))]
            costs[index] = _path_time(sample, pick)
        else:
            costs[index] = cost / mass
    return costs


def train_seer_models(
    dataset: TrainingDataset, config: Optional[TrainingConfig] = None
) -> SeerModels:
    """Fit the known, gathered and classifier-selection decision trees."""
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    config = config or TrainingConfig()

    known_model = DecisionTreeClassifier(
        max_depth=config.known_depth, min_samples_leaf=config.min_samples_leaf
    )
    known_model.fit(
        dataset.known_matrix(),
        dataset.labels(),
        feature_names=list(dataset.known_feature_names),
    )

    gathered_model = DecisionTreeClassifier(
        max_depth=config.gathered_depth, min_samples_leaf=config.min_samples_leaf
    )
    gathered_model.fit(
        dataset.full_matrix(),
        dataset.labels(),
        feature_names=list(dataset.full_feature_names),
    )

    selector_labels, selector_weights = _selector_labels(
        dataset, known_model, gathered_model, config
    )
    selector_model = DecisionTreeClassifier(
        max_depth=config.selector_depth, min_samples_leaf=config.min_samples_leaf
    )
    selector_model.fit(
        dataset.known_matrix(),
        selector_labels,
        feature_names=list(dataset.known_feature_names),
        sample_weight=selector_weights,
    )

    return SeerModels(
        known_model=known_model,
        gathered_model=gathered_model,
        selector_model=selector_model,
        kernel_names=list(dataset.kernel_names),
        known_feature_names=dataset.known_feature_names,
        gathered_feature_names=dataset.gathered_feature_names,
        training_size=len(dataset),
    )
