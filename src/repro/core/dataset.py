"""Assembly of the classifier training set.

The benchmarking stage measures each matrix once; the training set expands
those measurements across the iteration counts of interest (the paper trains
"a predictor on data which had various numbers of iterations", Section IV-E)
and derives, per sample:

* the known-feature vector (rows, cols, nnz, iterations),
* the gathered-feature vector (row-density statistics),
* the feature-collection cost,
* the end-to-end time of every kernel (preprocessing + iterations x runtime),
* and the resulting fastest-kernel label.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.benchmarking import BenchmarkSuite, MatrixMeasurement
from repro.sparse.features import GATHERED_FEATURE_NAMES, KNOWN_FEATURE_NAMES

#: Iteration counts used to build the default training corpus; 1 and 19 are
#: the two points the paper's multi-iteration study examines (Fig. 7).
DEFAULT_ITERATION_COUNTS = (1, 4, 19)


@dataclass
class TrainingSample:
    """One row of the classifier training set."""

    name: str
    iterations: int
    known_vector: np.ndarray
    gathered_vector: np.ndarray
    collection_time_ms: float
    kernel_total_ms: dict
    best_kernel: str

    @property
    def full_vector(self) -> np.ndarray:
        """Known followed by gathered features (the gathered model's input)."""
        return np.concatenate([self.known_vector, self.gathered_vector])

    def total_ms(self, kernel: str) -> float:
        """End-to-end time of ``kernel`` for this sample's iteration count."""
        return self.kernel_total_ms[kernel]

    @property
    def oracle_ms(self) -> float:
        """End-to-end time of the fastest kernel."""
        return self.kernel_total_ms[self.best_kernel]


@dataclass
class TrainingDataset:
    """The full training corpus plus convenience matrix views."""

    kernel_names: list
    samples: list = field(default_factory=list)
    known_feature_names: tuple = KNOWN_FEATURE_NAMES
    gathered_feature_names: tuple = GATHERED_FEATURE_NAMES

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def full_feature_names(self) -> tuple:
        """Feature layout of the gathered classifier (known then gathered)."""
        return tuple(self.known_feature_names) + tuple(self.gathered_feature_names)

    def known_matrix(self) -> np.ndarray:
        """Known-feature matrix, one row per sample."""
        return np.stack([sample.known_vector for sample in self.samples])

    def full_matrix(self) -> np.ndarray:
        """Known+gathered feature matrix, one row per sample."""
        return np.stack([sample.full_vector for sample in self.samples])

    def gathered_matrix(self) -> np.ndarray:
        """Gathered-feature matrix, one row per sample."""
        return np.stack([sample.gathered_vector for sample in self.samples])

    def labels(self) -> list:
        """Fastest-kernel label of every sample."""
        return [sample.best_kernel for sample in self.samples]

    def collection_times(self) -> np.ndarray:
        """Feature-collection cost of every sample."""
        return np.array(
            [sample.collection_time_ms for sample in self.samples], dtype=np.float64
        )

    def subset(self, indices) -> "TrainingDataset":
        """A new dataset containing only the given sample indices."""
        return TrainingDataset(
            kernel_names=list(self.kernel_names),
            samples=[self.samples[int(i)] for i in indices],
            known_feature_names=self.known_feature_names,
            gathered_feature_names=self.gathered_feature_names,
        )


def sample_from_measurement(
    measurement: MatrixMeasurement, iterations: int, kernel_names
) -> TrainingSample:
    """Expand one benchmark measurement into a sample at ``iterations``."""
    totals = {}
    for kernel in kernel_names:
        total = measurement.kernel_total_ms(kernel, iterations)
        totals[kernel] = total if math.isfinite(total) else math.inf
    finite = {k: v for k, v in totals.items() if math.isfinite(v)}
    if not finite:
        raise ValueError(
            f"no kernel can process matrix {measurement.name!r}"
        )
    best = min(finite, key=lambda kernel: (finite[kernel], kernel))
    known = measurement.known.with_iterations(iterations)
    return TrainingSample(
        name=measurement.name,
        iterations=iterations,
        known_vector=known.as_vector(),
        gathered_vector=measurement.gathered.as_vector(),
        collection_time_ms=measurement.collection_time_ms,
        kernel_total_ms=totals,
        best_kernel=best,
    )


def build_training_dataset(
    suite: BenchmarkSuite, iteration_counts=DEFAULT_ITERATION_COUNTS
) -> TrainingDataset:
    """Expand a benchmark suite into the classifier training corpus."""
    iteration_counts = tuple(iteration_counts)
    if not iteration_counts:
        raise ValueError("iteration_counts must not be empty")
    if any(count < 1 for count in iteration_counts):
        raise ValueError("iteration counts must be >= 1")
    samples = [
        sample_from_measurement(measurement, iterations, suite.kernel_names)
        for measurement in suite.measurements
        for iterations in iteration_counts
    ]
    domain = suite.domain
    return TrainingDataset(
        kernel_names=list(suite.kernel_names),
        samples=samples,
        known_feature_names=domain.known_feature_names,
        gathered_feature_names=domain.gathered_feature_names,
    )
