"""Seer: predictive runtime kernel selection for irregular problems.

A full reproduction of the CGO 2024 paper "Seer: Predictive Runtime Kernel
Selection for Irregular Problems" (Swann, Osama, Sangaiah, Mahmud, AMD
Research) as a self-contained Python library: the Seer training and
inference abstraction, a from-scratch CART decision tree, the eight SpMV
kernel variants of the case study on top of an analytical GPU execution
model, a synthetic SuiteSparse-like matrix collection, and the benchmark
harness that regenerates every table and figure of the evaluation.

Quickstart::

    from repro import run_sweep

    sweep = run_sweep(profile="tiny")
    print(sweep.test_report.aggregate_table())
"""

from repro.bench import (
    EngineStats,
    EvaluationReport,
    OraclePredictor,
    SweepEngine,
    SweepResult,
    evaluate_dataset,
    run_sweep,
)
from repro.core import (
    BenchmarkSuite,
    SeerModels,
    SeerPredictor,
    SeerResult,
    TrainingConfig,
    TrainingDataset,
    build_training_dataset,
    run_benchmark_suite,
    seer,
    train_seer_models,
)
from repro.domains import (
    FeatureField,
    ProblemDomain,
    domain_names,
    get_domain,
    register_domain,
)
from repro.gpu import MI100, DeviceSpec, get_device
from repro.kernels import default_kernels, make_kernel
from repro.ml import DecisionTreeClassifier, kendall_tau
from repro.pipeline import (
    FeatureBundle,
    FeaturePipeline,
    MatrixSource,
    discover_sources,
)
from repro.serving import (
    ModelArtifactError,
    ModelRegistry,
    load_models,
    save_models,
    serve_sources,
)
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    ELLMatrix,
    build_collection,
    gathered_features,
    known_features,
)

__version__ = "1.2.0"

__all__ = [
    "FeatureField",
    "ProblemDomain",
    "domain_names",
    "get_domain",
    "register_domain",
    "EngineStats",
    "EvaluationReport",
    "OraclePredictor",
    "SweepEngine",
    "SweepResult",
    "evaluate_dataset",
    "run_sweep",
    "BenchmarkSuite",
    "SeerModels",
    "SeerPredictor",
    "SeerResult",
    "TrainingConfig",
    "TrainingDataset",
    "build_training_dataset",
    "run_benchmark_suite",
    "seer",
    "train_seer_models",
    "MI100",
    "DeviceSpec",
    "get_device",
    "default_kernels",
    "make_kernel",
    "DecisionTreeClassifier",
    "kendall_tau",
    "FeatureBundle",
    "FeaturePipeline",
    "MatrixSource",
    "discover_sources",
    "ModelArtifactError",
    "ModelRegistry",
    "load_models",
    "save_models",
    "serve_sources",
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "build_collection",
    "gathered_features",
    "known_features",
    "__version__",
]
