#!/usr/bin/env python3
"""Iterative solver scenario: preprocessing amortization in practice.

SpMV is the core routine of Krylov solvers, where the same matrix is applied
for tens or hundreds of iterations.  The paper's multi-iteration study
(Fig. 7) shows that kernels with a preprocessing stage (Adaptive-CSR,
rocSPARSE) only pay off once the iteration count amortizes that setup cost —
and that Seer can predict where the crossover lies because the iteration
count is a trivially known feature.

This example runs a Jacobi-style iteration ``x_{k+1} = (b - A x_k) * d`` on
an electromagnetic-style matrix and compares three strategies:

* the kernel Seer selects when told the solve runs for 1 iteration,
* the kernel Seer selects when told the solve runs for many iterations,
* every fixed kernel choice, for reference.

Run with::

    python examples/iterative_solver.py
"""

from __future__ import annotations

import numpy as np

from repro import run_sweep
from repro.kernels.base import UnsupportedKernelError
from repro.kernels.registry import default_kernels, make_kernel
from repro.sparse.collection import archetype

#: Iteration counts compared by the example.
ITERATION_COUNTS = (1, 19, 100)


def make_diagonally_dominant(matrix):
    """Shift the diagonal so Jacobi iteration on the matrix converges."""
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csr import CSRMatrix

    coo = matrix.to_coo()
    row_sums = np.zeros(matrix.num_rows)
    np.add.at(row_sums, coo.rows, np.abs(coo.values))
    diag = np.arange(matrix.num_rows, dtype=np.int64)
    shifted = COOMatrix(
        num_rows=matrix.num_rows,
        num_cols=matrix.num_cols,
        rows=np.concatenate([coo.rows, diag]),
        cols=np.concatenate([coo.cols, diag]),
        values=np.concatenate([coo.values, 1.1 * row_sums + 1.0]),
    )
    return CSRMatrix.from_coo(shifted.deduplicated())


def jacobi_sweeps(matrix, diagonal, b, iterations, kernel):
    """Run ``iterations`` Jacobi sweeps using ``kernel`` for the SpMV."""
    x = np.zeros(matrix.num_cols)
    for _ in range(iterations):
        y = kernel.run(matrix, x, iterations=1).y
        x = x + (b - y) / diagonal
    return x


def main() -> None:
    print("training the Seer predictor (medium synthetic collection) ...")
    sweep = run_sweep(profile="medium")
    predictor = sweep.predictor

    record = archetype("CurlCurl_3_like", scale=16384)
    matrix = make_diagonally_dominant(record.matrix)
    # Extract the diagonal in one vectorized pass (Jacobi needs it).
    coo = matrix.to_coo()
    diag_mask = coo.rows == coo.cols
    diagonal = np.zeros(matrix.num_rows)
    diagonal[coo.rows[diag_mask]] = coo.values[diag_mask]
    b = np.ones(matrix.num_rows)
    print(f"matrix: {record.name} (diagonally shifted)  "
          f"rows={matrix.num_rows:,}  nnz={matrix.nnz:,}\n")

    kernels = default_kernels(include_rocsparse=True)
    for iterations in ITERATION_COUNTS:
        decision = predictor.predict(matrix, iterations=iterations, name=record.name)
        selected = make_kernel(decision.kernel_name)
        selected_timing = selected.timing(matrix)
        selected_total = decision.overhead_ms + selected_timing.total_ms(iterations)

        totals = {}
        for kernel in kernels:
            try:
                totals[kernel.name] = kernel.timing(matrix).total_ms(iterations)
            except UnsupportedKernelError:
                continue
        best_kernel = min(totals, key=totals.get)

        print(f"--- planned iterations: {iterations}")
        print(f"    Seer path / kernel : {decision.selector_choice} -> {decision.kernel_name}")
        print(f"    Seer total (sim)   : {selected_total:.3f} ms")
        print(f"    best fixed kernel  : {best_kernel} ({totals[best_kernel]:.3f} ms)")
        worst_kernel = max(totals, key=totals.get)
        print(f"    worst fixed kernel : {worst_kernel} ({totals[worst_kernel]:.3f} ms)")

    # Demonstrate that the numerics are real: run a short solve with the
    # kernel selected for the multi-iteration case.
    decision = predictor.predict(matrix, iterations=ITERATION_COUNTS[-1], name=record.name)
    kernel = make_kernel(decision.kernel_name)
    x = jacobi_sweeps(matrix, diagonal, b, 25, kernel)
    residual = np.linalg.norm(b - matrix.spmv(x)) / np.linalg.norm(b)
    print(f"\n25 Jacobi sweeps with {decision.kernel_name}: relative residual {residual:.2e}")


if __name__ == "__main__":
    main()
