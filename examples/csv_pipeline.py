#!/usr/bin/env python3
"""Driving Seer through its file-based pipeline (the paper's Section III-D API).

The original Seer tooling communicates between stages through CSV files: the
GPU benchmarking stage and the feature-collection kernels write CSVs, the
training script ``seer(runtime, preprocessing_data, features)`` consumes
them, and the trained models are emitted as a C++ header.  This example does
exactly that, including round-tripping everything through files on disk, so
it doubles as a template for plugging in *real* benchmark data collected on
real hardware.

Run with::

    python examples/csv_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.benchmarking import run_benchmark_suite
from repro.core.seer import seer
from repro.sparse.collection import build_collection


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="seer_pipeline_"))
    print(f"pipeline working directory: {workdir}")

    # Stage 1+2: GPU benchmarking and feature collection over the
    # representative dataset, written out as the Section III-D CSVs.
    collection = build_collection("tiny")
    suite = run_benchmark_suite(collection)
    suite.save(workdir)
    print(f"wrote benchmarking CSVs for {len(suite)} matrices and "
          f"{len(suite.kernel_names)} kernels:")
    for path in sorted(workdir.glob("*.csv"))[:6]:
        print(f"  {path.name}")
    print("  ...")

    # Stage 3: the seer() training call, reading those CSVs back.
    result = seer(
        runtime=workdir / "runtime.csv",
        preprocessing_data=workdir / "preprocessing.csv",
        features=workdir / "features.csv",
        known=workdir / "known.csv",
        header_path=workdir / "seer_models.h",
    )
    print(f"\ntrained models on {result.models.training_size} samples")
    print(f"generated C++ header: {result.header_path}")
    header_lines = result.cpp_header.splitlines()
    print("header preview:")
    for line in header_lines[:12]:
        print(f"  {line}")

    # Stage 4: the returned predictor is immediately deployable.
    record = collection.records[0]
    decision = result.predictor.predict(record.matrix, iterations=19, name=record.name)
    print(f"\nexample selection for {record.name!r} at 19 iterations: "
          f"{decision.selector_choice} path -> {decision.kernel_name}")


if __name__ == "__main__":
    main()
