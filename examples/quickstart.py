#!/usr/bin/env python3
"""Quickstart: train a Seer predictor and use it to pick SpMV kernels.

This walks the full Seer flow of the paper on a small synthetic collection:

1. benchmark every kernel variant of Table II over a representative dataset
   (the GPU benchmarking stage),
2. run the feature-collection kernels (the feature-collection stage),
3. train the known, gathered and classifier-selection decision trees,
4. deploy the predictor and let it pick kernels for new matrices,
5. export the models as a C++ header, exactly like the paper's tooling.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import run_sweep
from repro.core.codegen import write_cpp_header
from repro.sparse.generators import power_law_matrix, regular_matrix


def main() -> None:
    # Stages 1-3: benchmark the synthetic collection and train the models.
    print("benchmarking the synthetic collection and training Seer models ...")
    sweep = run_sweep(profile="small")
    report = sweep.test_report
    print(f"  matrices benchmarked : {len(sweep.suite)}")
    print(f"  training samples     : {len(sweep.train_set)}")
    print(f"  known / gathered acc : {report.accuracy('Known'):.2f} / "
          f"{report.accuracy('Gathered'):.2f}")
    print(f"  selector vs Oracle   : {report.slowdown_vs_oracle():.2f}x aggregate runtime")

    # Stage 4: deploy the predictor on matrices it has never seen.
    predictor = sweep.predictor
    workloads = {
        "uniform stencil (ELL-friendly)": regular_matrix(16_384, 16_384, 8, rng=1),
        "web graph (heavy-tailed rows)": power_law_matrix(16_384, 16_384, 16.0, rng=2),
    }
    for description, matrix in workloads.items():
        decision = predictor.predict(matrix, iterations=1, name=description)
        x = np.ones(matrix.num_cols)
        result = predictor.execute(matrix, x, iterations=1, name=description)
        print(f"\n  workload: {description}")
        print(f"    selector path     : {decision.selector_choice}"
              f" (collection {decision.collection_time_ms:.3f} ms)")
        print(f"    selected kernel   : {decision.kernel_name}")
        print(f"    simulated runtime : {result.total_ms:.3f} ms "
              f"(y[0] = {result.run.y[0]:.3f})")

    # Stage 5: export the models for embedding in a C++ library.
    header = write_cpp_header(sweep.models, "seer_models.h")
    print(f"\nwrote generated decision trees to {header}")
    print("\nselector decision tree (explainable, as in Section III-C):")
    print(sweep.models.selector_model.export_text())


if __name__ == "__main__":
    main()
