#!/usr/bin/env python3
"""Graph-analytics scenario: PageRank over a scale-free web graph.

Graph analytics is the other irregular workload the paper's introduction
motivates: the adjacency matrices of web/social graphs have power-law degree
distributions, which is exactly where padded formats collapse and
load-balanced schedules shine.  This example builds a synthetic web graph,
lets Seer choose the SpMV kernel for the PageRank power iteration, and
compares the simulated end-to-end time against fixed kernel choices.

Run with::

    python examples/graph_pagerank.py
"""

from __future__ import annotations

import numpy as np

from repro import run_sweep
from repro.kernels.base import UnsupportedKernelError
from repro.kernels.registry import default_kernels, make_kernel
from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import power_law_matrix

#: Number of PageRank power iterations (known ahead of time by the caller).
PAGERANK_ITERATIONS = 25

#: Damping factor of the PageRank iteration.
DAMPING = 0.85


def build_web_graph(num_pages: int, seed: int = 11) -> CSRMatrix:
    """Column-stochastic adjacency matrix of a synthetic scale-free web graph."""
    adjacency = power_law_matrix(num_pages, num_pages, 18.0, exponent=1.9, rng=seed)
    # Normalize columns so each page distributes its rank equally over its
    # out-links (values become 1 / out-degree of the source column).
    out_degree = np.bincount(adjacency.col_indices, minlength=num_pages).astype(float)
    out_degree[out_degree == 0.0] = 1.0
    values = 1.0 / out_degree[adjacency.col_indices]
    return CSRMatrix(
        num_rows=adjacency.num_rows,
        num_cols=adjacency.num_cols,
        row_offsets=adjacency.row_offsets,
        col_indices=adjacency.col_indices,
        values=values,
    )


def pagerank(matrix: CSRMatrix, kernel, iterations: int) -> np.ndarray:
    """Power iteration using ``kernel`` for the SpMV."""
    num_pages = matrix.num_rows
    rank = np.full(num_pages, 1.0 / num_pages)
    teleport = (1.0 - DAMPING) / num_pages
    for _ in range(iterations):
        spread = kernel.run(matrix, rank, iterations=1).y
        rank = teleport + DAMPING * spread
    return rank / rank.sum()


def main() -> None:
    print("training the Seer predictor (medium synthetic collection) ...")
    sweep = run_sweep(profile="medium")
    predictor = sweep.predictor

    graph = build_web_graph(60_000)
    print(f"web graph: {graph.num_rows:,} pages, {graph.nnz:,} links")
    degrees = graph.row_lengths()
    print(f"in-degree: mean {degrees.mean():.1f}, max {degrees.max()} "
          "(heavy-tailed, as real web graphs are)\n")

    decision = predictor.predict(graph, iterations=PAGERANK_ITERATIONS, name="web_graph")
    print(f"Seer decision: {decision.selector_choice} path -> {decision.kernel_name} "
          f"(selection overhead {decision.overhead_ms:.3f} ms)")

    totals = {}
    for kernel in default_kernels(include_rocsparse=True):
        try:
            totals[kernel.name] = kernel.timing(graph).total_ms(PAGERANK_ITERATIONS)
        except UnsupportedKernelError:
            totals[kernel.name] = float("inf")
    selected_ms = totals[decision.kernel_name] + decision.overhead_ms
    best = min(totals, key=totals.get)
    worst = max(totals, key=lambda k: totals[k] if np.isfinite(totals[k]) else -1.0)
    print(f"simulated time for {PAGERANK_ITERATIONS} iterations:")
    print(f"  Seer selection : {selected_ms:10.3f} ms ({decision.kernel_name})")
    print(f"  best fixed     : {totals[best]:10.3f} ms ({best})")
    finite_worst = totals[worst] if np.isfinite(totals[worst]) else max(
        t for t in totals.values() if np.isfinite(t)
    )
    print(f"  worst fixed    : {finite_worst:10.3f} ms ({worst})")

    kernel = make_kernel(decision.kernel_name)
    rank = pagerank(graph, kernel, PAGERANK_ITERATIONS)
    top = np.argsort(rank)[::-1][:5]
    print("\ntop-5 pages by PageRank:")
    for page in top:
        print(f"  page {page:7d}  rank {rank[page]:.6f}  in-degree {degrees[page]}")


if __name__ == "__main__":
    main()
