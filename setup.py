"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which must build a wheel) are unavailable.  This
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
