"""Benchmarks of the sweep engine itself: parallel speedup and cache wins.

These quantify what the engine buys over the serial reference path — the
fan-out over worker processes on the benchmarking stage, and the cost of
reloading a whole sweep from the on-disk artifact cache instead of
recomputing it.  ``extra_info`` carries the serial-vs-parallel speedup so the
regression guard and CI logs show it alongside the reproduced paper numbers.
"""

import os
import time

from benchmarks.conftest import engine_bench_profile, record
from repro.bench.engine import SweepEngine


def test_bench_engine_parallel_speedup(benchmark):
    """Benchmarking stage through the engine with one worker per CPU."""
    profile = engine_bench_profile()
    serial_engine = SweepEngine(jobs=1)
    start = time.perf_counter()
    serial_suite = serial_engine.run_benchmark_suite(profile=profile)
    serial_s = time.perf_counter() - start

    jobs = os.cpu_count() or 1
    suite = benchmark.pedantic(
        lambda: SweepEngine(jobs=jobs).run_benchmark_suite(profile=profile),
        rounds=1,
        iterations=1,
    )
    parallel_s = benchmark.stats.stats.mean
    assert suite.names() == serial_suite.names()
    record(
        benchmark,
        profile=profile,
        jobs=jobs,
        matrices=len(suite),
        serial_s=serial_s,
        parallel_s=parallel_s,
        speedup=serial_s / parallel_s if parallel_s else float("nan"),
    )


def test_bench_engine_cached_sweep_reload(benchmark, tmp_path):
    """Serving a whole sweep from the on-disk cache (the steady state)."""
    profile = engine_bench_profile()
    populate = SweepEngine(jobs=1, cache_dir=tmp_path)
    populate.run_sweep(profile=profile)

    def reload_sweep():
        engine = SweepEngine(jobs=1, cache_dir=tmp_path)
        result = engine.run_sweep(profile=profile)
        assert engine.stats.sweep_cache_hits == 1
        return result

    result = benchmark(reload_sweep)
    record(
        benchmark,
        profile=profile,
        matrices=len(result.suite),
        samples=len(result.dataset),
    )
