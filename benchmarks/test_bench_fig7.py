"""Benchmark regenerating Fig. 7: multi-iteration preprocessing amortization."""

from benchmarks.conftest import profile_is_representative, record
from repro.experiments.fig7_multi_iteration import run_fig7


def test_fig7_multi_iteration_amortization(benchmark, paper_sweep):
    result = benchmark.pedantic(
        run_fig7, kwargs={"sweep": paper_sweep}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    record(
        benchmark,
        panels=[
            {
                "matrix": case.name,
                "iterations": case.iterations,
                "oracle_kernel": case.oracle_kernel,
                "oracle_ms": round(case.oracle_ms, 4),
                "selector_kernel": case.selector_kernel,
                "selector_path": case.selector_choice,
                "selector_ms": round(case.selector_ms, 4),
            }
            for case in result.cases
        ],
        amortization_flips=result.amortization_flips(),
    )

    # At a single iteration no preprocessing kernel is ever worth it.
    for case in result.cases:
        if case.iterations == 1:
            assert not case.oracle_uses_preprocessing_kernel

    # By 19 iterations the preprocessing amortizes on some matrices but not
    # on the very uniform circuit matrix (Fig. 7c/d vs 7a/b and 7e/f).
    flips = result.amortization_flips()
    assert len(flips) >= 1
    assert "G3_Circuit_like" not in flips

    # The selector stays within 2x of the Oracle on every panel (a quality
    # bar the models can only clear with a representative training corpus).
    if profile_is_representative():
        for case in result.cases:
            assert case.selector_ms <= 2.0 * case.oracle_ms
