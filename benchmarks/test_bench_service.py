"""Benchmarks of the serving daemon: admission batching vs per-request.

These pin the throughput the dynamic batcher buys.  The closed-loop load
runs use the same in-process transport as ``repro bench serve`` (clients
submit straight into the admission batcher), so the regression guard
watches the real daemon path — batcher queue, window fill, grouped
``evaluate_requests`` — without the stdlib HTTP server's per-connection
cost drowning the microsecond-scale inference being amortized.

The batched run is asserted faster than the per-request run (the
ISSUE-level acceptance criterion: batched admission beats per-request
inference at batch windows >= 8), with a small tolerance for scheduler
noise on loaded CI runners.
"""

from benchmarks.conftest import record
from repro.bench.loadgen import run_load, synth_requests
from repro.serving.artifacts import save_models
from repro.serving.service import ServiceConfig, ServingService

#: One closed-loop load shape shared by both runs so they are comparable.
REQUESTS = 192
CLIENTS = 16
WINDOW = 8
WAIT_MS = 2.0


def _service_inputs(paper_sweep, tmp_path_factory):
    directory = tmp_path_factory.mktemp("service-bench")
    model_path = save_models(
        paper_sweep.models,
        directory / "model.json",
        domain=paper_sweep.domain_name,
    )
    payloads = synth_requests(paper_sweep.models, REQUESTS)
    return str(model_path), payloads


def _load(model_path, payloads, batch_size):
    config = ServiceConfig(
        model=model_path,
        max_batch_size=batch_size,
        max_wait_ms=WAIT_MS,
        execute=False,
    )
    report = run_load(
        config,
        payloads,
        clients=CLIENTS,
        label=f"window={batch_size}",
        transport="inproc",
    )
    assert report.errors == 0
    return report


def test_bench_serve_per_request(benchmark, paper_sweep, tmp_path_factory):
    """Baseline: every request is its own window (max_batch_size = 1)."""
    model_path, payloads = _service_inputs(paper_sweep, tmp_path_factory)
    report = benchmark.pedantic(
        _load, args=(model_path, payloads, 1), rounds=3, iterations=1
    )
    record(
        benchmark,
        requests=report.requests,
        clients=report.clients,
        throughput_rps=report.throughput_rps,
        batch_occupancy_mean=report.server_metrics["batch_occupancy_mean"],
    )
    assert report.server_metrics["batch_occupancy_max"] == 1


def test_bench_serve_batched_window8(benchmark, paper_sweep, tmp_path_factory):
    """Admission batching at window 8 must beat per-request throughput."""
    model_path, payloads = _service_inputs(paper_sweep, tmp_path_factory)
    per_request = _load(model_path, payloads, 1)
    report = benchmark.pedantic(
        _load, args=(model_path, payloads, WINDOW), rounds=3, iterations=1
    )
    speedup = report.throughput_rps / per_request.throughput_rps
    record(
        benchmark,
        requests=report.requests,
        clients=report.clients,
        throughput_rps=report.throughput_rps,
        per_request_rps=per_request.throughput_rps,
        speedup=speedup,
        batch_occupancy_mean=report.server_metrics["batch_occupancy_mean"],
        full_flushes=report.server_metrics["full_flushes"],
        timer_flushes=report.server_metrics["timer_flushes"],
    )
    # Windows actually coalesce under 16 concurrent closed-loop clients...
    assert report.server_metrics["batch_occupancy_mean"] > 2.0
    # ...and amortized inference wins. Measured ~2x; 1.1 leaves CI headroom.
    assert speedup > 1.1


def test_bench_evaluate_window_amortization(benchmark, paper_sweep):
    """The core itself: one window-8 evaluate vs eight singleton evaluates."""
    import time

    from repro.serving.requests import ServeRequest, evaluate_requests

    models = paper_sweep.models
    payloads = synth_requests(models, 64)
    requests = [ServeRequest.from_payload(p) for p in payloads]

    def singles():
        for request in requests:
            evaluate_requests(models, [request], execute=False)

    def windows():
        for start in range(0, len(requests), 8):
            evaluate_requests(models, requests[start : start + 8], execute=False)

    singles()  # warm the compiled trees outside the timed region
    started = time.perf_counter()
    singles()
    singles_s = time.perf_counter() - started
    benchmark(windows)
    windows_s = benchmark.stats.stats.mean
    record(
        benchmark,
        requests=len(requests),
        singles_s=singles_s,
        windows_s=windows_s,
        speedup=singles_s / windows_s if windows_s else float("nan"),
    )
    assert windows_s < singles_s


def test_bench_serve_codegen_backend(benchmark, paper_sweep, tmp_path_factory):
    """The codegen-native backend under the same window-8 closed loop.

    This entry documents an honest cost, not a speedup: the generated
    if/else nests evaluate one row per call in Python, so the codegen
    backend trades the compiled backend's vectorized throughput for serving
    through exactly the artifact a production library would embed (its
    decisions are element-wise identical — pinned in tests/serving).
    ``extra_info.throughput_vs_compiled`` records the price; the floor
    assertion only catches a pathological collapse (e.g. the selector
    module being re-generated per window instead of cached).
    """
    model_path, payloads = _service_inputs(paper_sweep, tmp_path_factory)
    compiled = _load(model_path, payloads, WINDOW)
    config = ServiceConfig(
        model=model_path,
        max_batch_size=WINDOW,
        max_wait_ms=WAIT_MS,
        execute=False,
        backend="codegen",
    )
    report = benchmark.pedantic(
        run_load,
        args=(config, payloads),
        kwargs={"clients": CLIENTS, "label": "codegen", "transport": "inproc"},
        rounds=3,
        iterations=1,
    )
    assert report.errors == 0
    ratio = report.throughput_rps / compiled.throughput_rps
    record(
        benchmark,
        requests=report.requests,
        clients=report.clients,
        throughput_rps=report.throughput_rps,
        compiled_rps=compiled.throughput_rps,
        throughput_vs_compiled=ratio,
    )
    assert ratio > 0.05
