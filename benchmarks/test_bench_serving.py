"""Benchmarks of the serving layer: batch vs. scalar inference.

These pin the speedup the compiled vectorized path buys over the recursive
per-sample tree walks — the whole point of ``SeerModels.predict_batch`` —
plus the cost of a model-artifact save/load round trip.  The batch and
scalar paths are asserted to agree (they are differential-tested more
thoroughly in ``tests/serving``), so the benchmark can never quietly pin a
fast-but-wrong path.
"""

import time

from benchmarks.conftest import record
from repro.bench.evaluation import evaluate_dataset


def _feature_matrices(sweep):
    dataset = sweep.dataset
    return dataset.known_matrix(), dataset.gathered_matrix()


def _scalar_choices(models, known, gathered):
    return (
        tuple(models.predict_selector(row) for row in known),
        tuple(models.predict_known(row) for row in known),
        tuple(
            models.predict_gathered(k, g) for k, g in zip(known, gathered)
        ),
    )


def test_bench_scalar_inference(benchmark, paper_sweep):
    """Reference: all three trees over the corpus, one recursive walk each."""
    models = paper_sweep.models
    known, gathered = _feature_matrices(paper_sweep)
    result = benchmark(_scalar_choices, models, known, gathered)
    record(benchmark, samples=len(known))
    assert len(result[0]) == len(known)


def test_bench_batch_inference(benchmark, paper_sweep):
    """The compiled vectorized path over the same corpus."""
    models = paper_sweep.models
    known, gathered = _feature_matrices(paper_sweep)

    start = time.perf_counter()
    scalar = _scalar_choices(models, known, gathered)
    scalar_s = time.perf_counter() - start
    models.predict_batch(known, gathered)  # compile outside the timed region

    batch = benchmark(models.predict_batch, known, gathered)
    batch_s = benchmark.stats.stats.mean
    assert (batch.selector_choices, batch.known_kernels, batch.gathered_kernels) == scalar
    record(
        benchmark,
        samples=len(known),
        scalar_s=scalar_s,
        batch_s=batch_s,
        speedup=scalar_s / batch_s if batch_s else float("nan"),
    )


def test_bench_vectorized_evaluation(benchmark, paper_sweep):
    """Whole-corpus evaluation through the batch path (the sweep hot loop)."""
    report = benchmark(
        evaluate_dataset, paper_sweep.dataset, paper_sweep.models
    )
    record(benchmark, samples=len(report.rows))
    assert len(report.rows) == len(paper_sweep.dataset)


def test_bench_model_artifact_roundtrip(benchmark, paper_sweep, tmp_path_factory):
    """Registry save + validated load of a full trained model bundle."""
    from repro.serving.artifacts import load_models, save_models

    directory = tmp_path_factory.mktemp("serving-bench")

    def roundtrip():
        path = save_models(
            paper_sweep.models, directory / "model.json", domain=paper_sweep.domain_name
        )
        return load_models(path, domain=paper_sweep.domain_name)

    loaded = benchmark(roundtrip)
    assert loaded.kernel_names == paper_sweep.models.kernel_names
