#!/usr/bin/env python
"""Benchmark regression guard.

Compares a fresh ``pytest-benchmark`` JSON report against a committed
baseline and fails (exit code 1) when any benchmark slowed down by more than
the threshold factor.

Because the baseline and the fresh run usually execute on different machines
(a developer laptop vs. a CI runner), raw wall-clock means are not directly
comparable.  By default every benchmark's mean is therefore normalized by the
geometric mean of all benchmarks common to both reports — a global
machine-speed factor cancels out, while a single benchmark regressing
relative to the rest of the suite is still caught.  Pass ``--absolute`` to
compare raw means instead (sensible when both runs share one machine).

Usage::

    python benchmarks/check_regression.py fresh.json \
        --baseline benchmarks/baseline.json --threshold 2.0
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load_means(path: str) -> dict:
    """Map benchmark name -> mean seconds from a pytest-benchmark report."""
    with open(path) as handle:
        data = json.load(handle)
    means = {}
    for bench in data.get("benchmarks", []):
        means[bench["fullname"]] = float(bench["stats"]["mean"])
    if not means:
        raise SystemExit(f"no benchmarks found in {path}")
    return means


def normalize(means: dict, names) -> dict:
    """Divide each mean by the geometric mean over ``names``."""
    logs = [math.log(means[name]) for name in names if means[name] > 0]
    scale = math.exp(sum(logs) / len(logs)) if logs else 1.0
    return {name: means[name] / scale for name in names}


def compare(baseline: dict, fresh: dict, threshold: float, absolute: bool) -> list:
    """Return (name, ratio) for every benchmark slower than ``threshold``."""
    common = sorted(set(baseline) & set(fresh))
    if not common:
        raise SystemExit("baseline and fresh report share no benchmarks")
    for name in sorted(set(baseline) ^ set(fresh)):
        side = "baseline" if name in baseline else "fresh report"
        print(f"note: {name} only present in the {side}; skipped")
    if not absolute:
        baseline = normalize(baseline, common)
        fresh = normalize(fresh, common)
    regressions = []
    for name in common:
        ratio = fresh[name] / baseline[name] if baseline[name] > 0 else math.inf
        flag = "REGRESSION" if ratio > threshold else "ok"
        print(f"{flag:>10}  {ratio:6.2f}x  {name}")
        if ratio > threshold:
            regressions.append((name, ratio))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="pytest-benchmark JSON of the current run")
    parser.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        help="committed pytest-benchmark JSON to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when a benchmark is more than this factor slower",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw means instead of suite-normalized means",
    )
    args = parser.parse_args(argv)

    regressions = compare(
        load_means(args.baseline), load_means(args.fresh), args.threshold, args.absolute
    )
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.1f}x:"
        )
        for name, ratio in regressions:
            print(f"  {ratio:6.2f}x  {name}")
        return 1
    print(f"\nno benchmark regressed beyond {args.threshold:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
