"""Benchmark regenerating Table III: Kendall correlations of runtime vs features."""

from benchmarks.conftest import record
from repro.experiments.table3_kendall import run_table3


def test_table3_kendall_correlations(benchmark, paper_sweep):
    result = benchmark.pedantic(
        run_table3, kwargs={"sweep": paper_sweep}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    record(
        benchmark,
        **{
            f"tau[{kernel}]": {k: round(v, 2) for k, v in row.items()}
            for kernel, row in result.correlations.items()
        },
    )
    # Paper-shape checks: row-mapped kernels correlate strongly with the row
    # count; the work-oriented kernels correlate most strongly with nnz.
    adaptive = result.row_for("CSR,A")
    work_oriented = result.row_for("CSR,WO")
    ell = result.row_for("ELL,TM")
    assert adaptive["rows"] > 0.5
    assert work_oriented["nnz"] >= work_oriented["most"]
    assert ell["rows"] <= adaptive["rows"]
