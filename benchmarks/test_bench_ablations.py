"""Ablation benchmarks for the design decisions called out in DESIGN.md.

These are not paper figures; they quantify the contribution of the pieces
the paper argues for: the classifier-selection model itself (vs always-known
/ always-gathered), the cost-aware selector labels, the decision-tree depth
bound, and the variance feature of the gathered set.
"""

import numpy as np

from benchmarks.conftest import record
from repro.bench.evaluation import evaluate_dataset
from repro.core.training import TrainingConfig, train_seer_models
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import accuracy_score


def test_ablation_selector_vs_fixed_strategies(benchmark, paper_sweep):
    """The classifier-selection model vs always-known and always-gathered."""

    def run():
        return evaluate_dataset(
            paper_sweep.test_set, paper_sweep.models, paper_sweep.predictor
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    table = {
        approach: round(report.aggregate_ms(approach), 3)
        for approach in ("Oracle", "Selector", "Gathered", "Known")
    }
    print("\nablation (aggregate ms):", table)
    record(benchmark, aggregate_ms=table)
    assert report.aggregate_ms("Selector") <= 1.05 * report.aggregate_ms("Gathered")
    assert report.aggregate_ms("Selector") <= 1.05 * report.aggregate_ms("Known")


def test_ablation_cost_aware_selector_labels(benchmark, paper_sweep):
    """Cost-aware selector labels vs plain accuracy-driven labels."""

    def run():
        cost_aware = paper_sweep.models
        plain = train_seer_models(
            paper_sweep.train_set, TrainingConfig(cost_aware_selector=False)
        )
        results = {}
        for name, models in (("cost_aware", cost_aware), ("plain", plain)):
            report = evaluate_dataset(paper_sweep.test_set, models)
            results[name] = report.aggregate_ms("Selector")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nselector aggregate ms:", {k: round(v, 3) for k, v in results.items()})
    record(benchmark, **{k: round(v, 4) for k, v in results.items()})
    # The cost-aware labels must never be substantially worse; they exist to
    # protect against expensive mispredictions.
    assert results["cost_aware"] <= results["plain"] * 1.10


def test_ablation_tree_depth(benchmark, paper_sweep):
    """Effect of the max-depth regularizer on test accuracy (Section III-C)."""

    def run():
        accuracies = {}
        train = paper_sweep.train_set
        test = paper_sweep.test_set
        test_labels = test.labels()
        for depth in (2, 4, 8, 12):
            model = DecisionTreeClassifier(max_depth=depth)
            model.fit(train.full_matrix(), train.labels())
            predictions = model.predict(test.full_matrix())
            accuracies[depth] = accuracy_score(test_labels, predictions)
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ngathered-model test accuracy by depth:", accuracies)
    record(benchmark, **{f"depth_{d}": round(a, 3) for d, a in accuracies.items()})
    assert accuracies[8] >= accuracies[2]


def test_ablation_variance_feature(benchmark, paper_sweep):
    """Dropping the row-density variance from the gathered feature set."""

    def run():
        train = paper_sweep.train_set
        test = paper_sweep.test_set
        full_train, full_test = train.full_matrix(), test.full_matrix()
        labels_train, labels_test = train.labels(), test.labels()
        variance_column = list(train.full_feature_names).index("var_row_density")
        keep = [i for i in range(full_train.shape[1]) if i != variance_column]
        with_variance = DecisionTreeClassifier(max_depth=8).fit(full_train, labels_train)
        without_variance = DecisionTreeClassifier(max_depth=8).fit(
            full_train[:, keep], labels_train
        )
        return {
            "with_variance": accuracy_score(
                labels_test, with_variance.predict(full_test)
            ),
            "without_variance": accuracy_score(
                labels_test, without_variance.predict(full_test[:, keep])
            ),
        }

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ngathered-model accuracy:", {k: round(v, 3) for k, v in accuracies.items()})
    record(benchmark, **{k: round(v, 4) for k, v in accuracies.items()})
    assert accuracies["with_variance"] >= accuracies["without_variance"] - 0.05


def test_ablation_inference_overhead(benchmark, paper_sweep):
    """Wall-clock cost of one decision-tree selection (the 'negligible
    inference cost' claim) measured on this host."""
    sample = paper_sweep.test_set.samples[0]
    models = paper_sweep.models
    vector = np.asarray(sample.known_vector, dtype=np.float64)

    def select_once():
        choice = models.predict_selector(vector)
        if choice == "gathered":
            return models.predict_gathered(vector, sample.gathered_vector)
        return models.predict_known(vector)

    benchmark(select_once)
    record(benchmark, note="one selector + classifier evaluation on the host CPU")
