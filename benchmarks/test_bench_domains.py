"""Benchmarks of the domain plugin layer.

The domain API routes every kernel instantiation, feature extraction and
collector construction through a registry indirection; these benchmarks pin
the cost of that indirection so a regression in the dispatch path (e.g. an
accidentally quadratic lookup or an import inside a hot loop) is caught by
the regression guard alongside the paper numbers.
"""

from benchmarks.conftest import record
from repro.domains import get_domain
from repro.sparse.generators import power_law_matrix

#: Dispatch operations per benchmark round, enough to amortize timer noise.
DISPATCH_ROUNDS = 200


def test_bench_domain_dispatch_overhead(benchmark):
    """Registry lookup + kernel instantiation + known-feature extraction."""
    matrix = power_law_matrix(10_000, 10_000, 8.0, rng=4)

    def dispatch():
        domain = get_domain("spmv")
        known = None
        for label in domain.kernel_names():
            kernel = domain.make_kernel(label)
            known = domain.known_features(matrix, iterations=4)
        return kernel, known

    kernel, known = benchmark(
        lambda: [dispatch() for _ in range(DISPATCH_ROUNDS)][-1]
    )
    record(
        benchmark,
        dispatch_rounds=DISPATCH_ROUNDS,
        kernels_per_round=len(get_domain("spmv").kernel_names()),
        resolved_kernel=kernel.name,
        known_rows=int(known.as_vector()[0]),
    )


def test_bench_spmm_feature_collection(benchmark):
    """Simulated column-block occupancy collection on a 1M-nnz workload."""
    from repro.domains.spmm import SpmmWorkload

    matrix = power_law_matrix(200_000, 200_000, 10.0, rng=5)
    workload = SpmmWorkload(matrix=matrix, num_vectors=32)
    collector = get_domain("spmm").make_collector()
    result = benchmark(lambda: collector.collect(workload))
    record(benchmark, collection_ms=result.collection_time_ms, nnz=matrix.nnz)
