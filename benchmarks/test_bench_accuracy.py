"""Benchmark regenerating the Section IV-C accuracy table (77% / 83% / 95%)."""

from benchmarks.conftest import profile_is_representative, record
from repro.experiments.accuracy_table import run_accuracy_table


def test_model_accuracies_on_test_split(benchmark, paper_sweep):
    result = benchmark.pedantic(
        run_accuracy_table, kwargs={"sweep": paper_sweep}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    record(
        benchmark,
        known_accuracy=result.known_accuracy,
        gathered_accuracy=result.gathered_accuracy,
        selector_routing_accuracy=result.selector_accuracy,
        selector_kernel_accuracy=result.selector_kernel_accuracy,
        known_error_vs_oracle=result.known_error_vs_oracle,
        gathered_error_vs_oracle=result.gathered_error_vs_oracle,
        selector_error_vs_oracle=result.selector_error_vs_oracle,
        paper_known=0.77,
        paper_gathered=0.83,
        paper_selector=0.95,
    )
    # Shape: the gathered model is at least as accurate as the known model,
    # and the selector keeps the runtime error far below the known model's.
    assert result.gathered_accuracy >= result.known_accuracy
    if profile_is_representative():
        assert result.selector_error_vs_oracle <= result.known_error_vs_oracle + 1e-9
        assert result.known_accuracy >= 0.3
        assert result.gathered_accuracy >= 0.6
