"""Benchmarks of the ingestion + raw-matrix serving layer.

These pin the cost of the ``repro serve`` hot path: Matrix-Market parsing,
the content-addressed ingest cache (a warm hit must stay far cheaper than a
cold parse) and the end-to-end decision loop over an ingested corpus.
"""

import pytest

from benchmarks.conftest import record
from repro.pipeline.sources import discover_sources
from repro.serving.ingest import IngestCache, ingest_matrix, serve_sources
from repro.sparse.generators import banded_matrix, power_law_matrix, regular_matrix
from repro.sparse.io import write_matrix_market

#: (name, builder) recipes of the benchmark corpus — a small structural mix.
_CORPUS = (
    ("pl_a", lambda: power_law_matrix(2048, 2048, 8.0, rng=1)),
    ("pl_b", lambda: power_law_matrix(1024, 1024, 16.0, rng=2)),
    ("band_a", lambda: banded_matrix(2048, 9, rng=3)),
    ("band_b", lambda: banded_matrix(1024, 17, rng=4)),
    ("reg_a", lambda: regular_matrix(2048, 2048, 8, rng=5)),
    ("reg_b", lambda: regular_matrix(1024, 1024, 16, rng=6)),
)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A directory of ``.mtx`` files standing in for a SuiteSparse download."""
    directory = tmp_path_factory.mktemp("ingest-corpus")
    for name, builder in _CORPUS:
        write_matrix_market(builder(), directory / f"{name}.mtx")
    return directory


def _parse_all(sources, cache=None):
    return [ingest_matrix(source, cache)[0] for source in sources]


def test_bench_ingest_cold_parse(benchmark, corpus_dir):
    """Reference: parse every Matrix-Market file with no cache tier."""
    sources = discover_sources(corpus_dir)
    matrices = benchmark(_parse_all, sources)
    record(benchmark, matrices=len(matrices), nnz=sum(m.nnz for m in matrices))


def test_bench_ingest_warm_cache(benchmark, corpus_dir, tmp_path):
    """The content-addressed ``.npz`` tier serving the same corpus."""
    sources = discover_sources(corpus_dir)
    cache = IngestCache(tmp_path / "cache")
    _parse_all(sources, cache)  # populate outside the timed region
    matrices = benchmark(_parse_all, sources, cache)
    record(benchmark, matrices=len(matrices))


def test_bench_serve_corpus(benchmark, corpus_dir, tmp_path, paper_sweep):
    """End-to-end serving: warm ingest cache, featurize, route, execute."""
    cache_dir = tmp_path / "cache"
    models = paper_sweep.models
    serve_sources(corpus_dir, models, cache_dir=cache_dir)  # warm the cache
    result = benchmark(serve_sources, corpus_dir, models, cache_dir=cache_dir)
    gathered = sum(1 for d in result.decisions if d.selector_choice == "gathered")
    record(benchmark, workloads=len(result.decisions), gathered_routed=gathered)
    assert len(result.decisions) == len(_CORPUS)
