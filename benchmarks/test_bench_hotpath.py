"""Benchmarks of the sweep hot path: batched vs. scalar measurement.

The measurement loop — per-kernel cycle models, launch simulation and
feature extraction over every matrix of the collection — dominates sweep
time.  These benchmarks pin the batched path's cost, its speedup over the
retired per-kernel scalar loop (the two are bit-identical, so the speedup is
free accuracy-wise), and the cost of emitting the standalone selectors.
"""

import time

from benchmarks.conftest import bench_profile, record
from repro.core.benchmarking import measure_matrix
from repro.core.codegen import models_to_cpp_header, models_to_python_module
from repro.domains import get_domain
from repro.sparse.collection import build_collection

import pytest


@pytest.fixture(scope="module")
def measure_setup():
    """The collection plus the kernel/pipeline set the sweep measures with."""
    domain = get_domain("spmv")
    collection = build_collection(profile=bench_profile())
    kernels = domain.default_kernels()
    pipeline = domain.make_pipeline()
    return domain, collection, kernels, pipeline


def _measure_all(domain, collection, kernels, pipeline, vectorized, precision="exact"):
    for entry in collection:
        measure_matrix(
            entry.name,
            entry.matrix,
            kernels,
            pipeline,
            domain=domain,
            vectorized=vectorized,
            precision=precision,
        )


def test_bench_measure_loop_vectorized(benchmark, measure_setup):
    """Batched feature+timing loop over the whole collection profile.

    ``extra_info.speedup_vs_scalar`` pins the batched path's advantage over
    the scalar reference loop measured in the same process.
    """
    domain, collection, kernels, pipeline = measure_setup
    benchmark(_measure_all, domain, collection, kernels, pipeline, True)

    def best_of(vectorized, reps=5):
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            _measure_all(domain, collection, kernels, pipeline, vectorized)
            times.append(time.perf_counter() - start)
        return min(times)

    scalar_s, vectorized_s = best_of(False), best_of(True)
    record(
        benchmark,
        matrices=len(list(collection)),
        profile=bench_profile(),
        scalar_loop_s=scalar_s,
        vectorized_loop_s=vectorized_s,
        speedup_vs_scalar=scalar_s / vectorized_s,
    )


def test_bench_measure_loop_scalar(benchmark, measure_setup):
    """The retired per-kernel scalar loop (kept behind SEER_SCALAR_TIMING)."""
    domain, collection, kernels, pipeline = measure_setup
    benchmark(_measure_all, domain, collection, kernels, pipeline, False)
    record(benchmark, profile=bench_profile())


def test_bench_measure_loop_fast(benchmark, measure_setup):
    """Fast-mode fused measurement loop over the whole collection profile.

    ``extra_info.speedup_vs_exact`` pins the tolerance-guarded fused path's
    advantage over the exact batched loop, measured interleaved in the same
    process (interleaving cancels frequency-scaling drift on shared
    runners).  Measured 1.15–1.35x across profiles; the in-test bound only
    guards against a real regression, with headroom for loaded CI runners —
    the committed baseline entry pins the absolute cost.
    """
    domain, collection, kernels, pipeline = measure_setup
    benchmark(_measure_all, domain, collection, kernels, pipeline, True, "fast")

    exact_times, fast_times = [], []
    for _ in range(5):
        start = time.perf_counter()
        _measure_all(domain, collection, kernels, pipeline, True, "exact")
        exact_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        _measure_all(domain, collection, kernels, pipeline, True, "fast")
        fast_times.append(time.perf_counter() - start)
    exact_s, fast_s = min(exact_times), min(fast_times)
    speedup = exact_s / fast_s
    record(
        benchmark,
        matrices=len(list(collection)),
        profile=bench_profile(),
        exact_loop_s=exact_s,
        fast_loop_s=fast_s,
        speedup_vs_exact=speedup,
    )
    assert speedup > 0.9


def test_bench_codegen_emit(benchmark, paper_sweep):
    """Emitting both standalone selectors from the trained models."""
    models = paper_sweep.models

    def emit():
        return models_to_python_module(models), models_to_cpp_header(models)

    module_source, header_source = benchmark(emit)
    record(
        benchmark,
        python_bytes=len(module_source),
        cpp_bytes=len(header_source),
    )
