"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
part — benchmarking the kernel set over the synthetic collection and training
the models — is done once per session on the profile selected by the
``SEER_BENCH_PROFILE`` environment variable (default: ``full``, the largest
synthetic stand-in for SuiteSparse).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.engine import engine_from_env
from repro.bench.runner import run_sweep

#: Environment variable selecting the collection profile for the benchmarks.
PROFILE_ENV_VAR = "SEER_BENCH_PROFILE"


def bench_profile() -> str:
    """Collection profile used by the benchmark harness."""
    return os.environ.get(PROFILE_ENV_VAR, "full")


#: Profiles with enough structural diversity to back the paper-shape
#: quality assertions (model accuracies, selector-vs-Oracle bounds).  The
#: ``tiny``/``small`` profiles exist for quick smoke runs and CI timing
#: guards; models trained on a couple dozen matrices cannot be held to the
#: paper's quality bar.
REPRESENTATIVE_PROFILES = ("medium", "full")


def profile_is_representative() -> bool:
    """Whether model-quality assertions are meaningful on this profile."""
    return bench_profile() in REPRESENTATIVE_PROFILES


def engine_bench_profile() -> str:
    """Profile for the engine's own benchmarks.

    The engine benchmarks run the benchmarking stage several times over
    (serial reference, parallel run, cache population), so they default to
    the cheaper ``small`` profile instead of ``full``; an explicit
    ``SEER_BENCH_PROFILE`` still applies to them too.
    """
    return os.environ.get(PROFILE_ENV_VAR, "small")


@pytest.fixture(scope="session")
def paper_sweep():
    """The end-to-end pipeline run shared by every figure/table benchmark.

    The same ``SEER_JOBS``/``SEER_CACHE_DIR`` variables the experiment
    drivers honour also parallelize/cache this fixture — only the sweep
    *production* is affected, never the quantities being benchmarked.
    """
    return run_sweep(profile=bench_profile(), engine=engine_from_env())


def record(benchmark, **extra_info) -> None:
    """Attach reproduced numbers to the benchmark's ``extra_info``."""
    for key, value in extra_info.items():
        if isinstance(value, float):
            benchmark.extra_info[key] = round(value, 6)
        else:
            benchmark.extra_info[key] = value
