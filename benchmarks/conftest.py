"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
part — benchmarking the kernel set over the synthetic collection and training
the models — is done once per session on the profile selected by the
``SEER_BENCH_PROFILE`` environment variable (default: ``full``, the largest
synthetic stand-in for SuiteSparse).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import run_sweep

#: Environment variable selecting the collection profile for the benchmarks.
PROFILE_ENV_VAR = "SEER_BENCH_PROFILE"


def bench_profile() -> str:
    """Collection profile used by the benchmark harness."""
    return os.environ.get(PROFILE_ENV_VAR, "full")


@pytest.fixture(scope="session")
def paper_sweep():
    """The end-to-end pipeline run shared by every figure/table benchmark."""
    return run_sweep(profile=bench_profile())


def record(benchmark, **extra_info) -> None:
    """Attach reproduced numbers to the benchmark's ``extra_info``."""
    for key, value in extra_info.items():
        if isinstance(value, float):
            benchmark.extra_info[key] = round(value, 6)
        else:
            benchmark.extra_info[key] = value
