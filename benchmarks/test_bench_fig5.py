"""Benchmark regenerating Fig. 5: single-iteration predictor comparison.

Covers the three per-matrix studies (Fig. 5a-c) and the dataset aggregate
(Fig. 5d) with the headline numbers: the selector tracks the Oracle, beats
the best single kernel in aggregate, and achieves a geometric-mean speedup
over the individual kernels.
"""

from benchmarks.conftest import record
from repro.experiments.fig5_single_iteration import run_fig5


def test_fig5_single_iteration_comparison(benchmark, paper_sweep):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"sweep": paper_sweep, "include_studies": True},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    record(
        benchmark,
        aggregate_ms={k: round(v, 3) for k, v in result.aggregate.items()},
        selector_speedup_vs_best_single_kernel=result.speedup_vs_best_kernel,
        selector_geomean_speedup_vs_kernels=result.geomean_speedup_vs_kernels,
        selector_slowdown_vs_oracle=result.slowdown_vs_oracle,
        paper_speedup_vs_best_kernel=2.0,
        paper_geomean_speedup=6.5,
    )

    # Fig. 5a-c structure: the Oracle lower-bounds everything; the gathered
    # path carries a visible collection overhead.
    for study in result.studies:
        oracle_ms = study.bar("Oracle").total_ms
        assert study.bar("Selector").total_ms >= oracle_ms
        assert study.bar("Gathered").overhead_ms > 0.0

    # Fig. 5c (heavy-tailed chemistry matrix): the selector must not be
    # burnt by a known-feature misprediction — it either matches the known
    # path (when that path happens to be right) or stays within the
    # collection overhead of the Oracle by routing to the gathered path.
    chemistry = next(s for s in result.studies if s.name == "Ga41As41H72_like")
    oracle_ms = chemistry.bar("Oracle").total_ms
    gathered_ms = chemistry.bar("Gathered").total_ms
    known_ms = chemistry.bar("Known").total_ms
    assert chemistry.bar("Selector").total_ms <= max(known_ms, gathered_ms) + 1e-9
    assert chemistry.bar("Selector").total_ms <= 1.5 * oracle_ms + 0.1

    # Fig. 5d aggregate: the selector tracks the Oracle, stays competitive
    # with the best single kernel (the paper reports a 2x win; the analytical
    # simulator compresses the spread between kernels, see EXPERIMENTS.md),
    # and posts a clear geomean speedup over the individual kernels.
    best_kernel_ms = min(
        value for key, value in result.aggregate.items()
        if key not in ("Oracle", "Selector", "Gathered", "Known")
    )
    assert result.aggregate["Selector"] <= best_kernel_ms * 1.25
    assert result.geomean_speedup_vs_kernels > 1.2
    assert result.slowdown_vs_oracle < 2.0
