"""Benchmark regenerating Fig. 6: feature-collection cost vs kernel runtime."""

from benchmarks.conftest import record
from repro.experiments.fig6_feature_cost import run_fig6


def test_fig6_feature_collection_cost_sweep(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    print("\n" + result.render())
    record(
        benchmark,
        series=[
            {
                "rows": p.rows,
                "collection_ms": round(p.collection_ms, 4),
                "csr_bm_ms": round(p.kernel_ms, 4),
            }
            for p in sorted(result.points, key=lambda p: p.rows)
        ],
        crossover_rows=result.crossover_rows(),
        paper_crossover_rows=100_000,
    )
    points = sorted(result.points, key=lambda p: p.rows)
    # Small matrices: collection costs at least as much as the kernel.
    assert points[0].collection_dominates
    # Large matrices: the kernel dwarfs collection.
    assert points[-1].kernel_ms > 5.0 * points[-1].collection_ms
    # Crossover in the paper's ballpark (within roughly an order of magnitude).
    assert 1e4 <= result.crossover_rows() <= 1e6
