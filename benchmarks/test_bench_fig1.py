"""Benchmark regenerating Fig. 1: fastest kernel per matrix across the collection."""

from benchmarks.conftest import record
from repro.experiments.fig1_best_kernel import run_fig1


def test_fig1_best_kernel_survey(benchmark, paper_sweep):
    result = benchmark.pedantic(
        run_fig1, kwargs={"sweep": paper_sweep}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    record(
        benchmark,
        matrices=len(result.points),
        distinct_winning_kernels=result.distinct_winners,
        winner_counts=dict(sorted(result.winner_counts.items())),
    )
    # The figure's message: no single kernel dominates the collection.
    assert result.distinct_winners >= 4
    most_wins = max(result.winner_counts.values())
    assert most_wins < len(result.points)
