"""Benchmarks of the library's own moving parts (not paper figures).

These measure the wall-clock cost of the reproduction's main operations —
simulating a kernel launch, collecting features, training the three trees —
so regressions in the library itself are visible alongside the reproduced
paper numbers.
"""

import numpy as np

from benchmarks.conftest import record
from repro.core.training import train_seer_models
from repro.kernels.feature_kernels import FeatureCollector
from repro.kernels.registry import make_kernel
from repro.sparse.generators import power_law_matrix


def test_bench_kernel_timing_simulation(benchmark):
    """Simulated timing of one adaptive-CSR iteration on a 1M-row matrix."""
    matrix = power_law_matrix(1_000_000, 1_000_000, 10.0, rng=1)
    kernel = make_kernel("CSR,A")
    result = benchmark(lambda: kernel.timing(matrix))
    record(benchmark, iteration_ms=result.iteration_ms, rows=matrix.num_rows, nnz=matrix.nnz)


def test_bench_feature_collection_simulation(benchmark):
    """Simulated feature collection on a 1M-row matrix."""
    matrix = power_law_matrix(1_000_000, 1_000_000, 10.0, rng=2)
    collector = FeatureCollector()
    result = benchmark(lambda: collector.collect(matrix))
    record(benchmark, collection_ms=result.collection_time_ms)


def test_bench_spmv_reference(benchmark):
    """Numeric CSR SpMV throughput of the reference implementation."""
    matrix = power_law_matrix(200_000, 200_000, 12.0, rng=3)
    x = np.random.default_rng(0).uniform(-1, 1, matrix.num_cols)
    benchmark(lambda: matrix.spmv(x))
    record(benchmark, nnz=matrix.nnz)


def test_bench_model_training(benchmark, paper_sweep):
    """Training the three Seer decision trees on the full training corpus."""
    models = benchmark.pedantic(
        train_seer_models, args=(paper_sweep.train_set,), rounds=1, iterations=1
    )
    record(
        benchmark,
        training_samples=len(paper_sweep.train_set),
        known_tree_nodes=models.known_model.num_nodes_,
        gathered_tree_nodes=models.gathered_model.num_nodes_,
        selector_tree_nodes=models.selector_model.num_nodes_,
    )
